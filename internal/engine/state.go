package engine

import (
	"math"
	"sort"

	"saspar/internal/keyspace"
	"saspar/internal/vtime"
)

// This file holds the two window-state backends.
//
// Counting mode (the default for benchmarks) tracks, per (query, side,
// key group), an exponentially-decayed arrival rate whose product with
// the window range estimates the in-window state size — exactly the
// quantity the AQE protocol must ship when a key group moves (Fig. 9).
//
// Exact mode maintains concrete window state — real sums, real join
// buffers — and emits verifiable results; it exists so correctness
// tests can prove that live re-partitioning never changes query output.

// qCounting is a query's counting-mode state.
type qCounting struct {
	rate [][]float64    // per side, per group: EWMA modelled tuples/sec
	last [][]vtime.Time // per side, per group: last update
}

func newQCounting(sides, groups int) *qCounting {
	c := &qCounting{rate: make([][]float64, sides), last: make([][]vtime.Time, sides)}
	for s := range c.rate {
		c.rate[s] = make([]float64, groups)
		c.last[s] = make([]vtime.Time, groups)
	}
	return c
}

// decayTo brings the EWMA for (side, group) forward to now.
func (c *qCounting) decayTo(side int, g keyspace.GroupID, now vtime.Time, tau float64) {
	dt := now.Sub(c.last[side][g]).Seconds()
	if dt > 0 {
		c.rate[side][g] *= math.Exp(-dt / tau)
		c.last[side][g] = now
	}
}

// expMemo is a single-entry cache of the last decay factor. In steady
// state every live (side, group) cell of a slot decays by exactly one
// tick with the query's fixed tau, so the same (dt, tau) pair recurs on
// every call; the memo returns the identical math.Exp result without
// re-evaluating it. Each slot owns one, so parallel shard workers never
// share a cell.
type expMemo struct{ dt, tau, v float64 }

func (mz *expMemo) exp(dt, tau float64) float64 {
	if mz.dt == dt && mz.tau == tau && mz.v != 0 {
		return mz.v
	}
	v := math.Exp(-dt / tau)
	*mz = expMemo{dt: dt, tau: tau, v: v}
	return v
}

// decayToMemo is decayTo with the slot's decay-factor memo on the hot
// path; bit-identical results, since the memo caches exact values.
func (c *qCounting) decayToMemo(side int, g keyspace.GroupID, now vtime.Time, tau float64, mz *expMemo) {
	dt := now.Sub(c.last[side][g]).Seconds()
	if dt > 0 {
		c.rate[side][g] *= mz.exp(dt, tau)
		c.last[side][g] = now
	}
}

// aggMapKey addresses one window instance of one grouping key.
type aggMapKey struct {
	win vtime.Time
	key uint64
}

// aggAcc is a partial aggregate: SUM(col) with the modelled weight.
type aggAcc struct {
	sum    float64
	weight float64
}

// AggPartial is the wire form of a partial aggregate moved between
// slots during re-partitioning — and the unit checkpoints capture and
// restore (see checkpoint.go), which is why it is exported and
// JSON-serializable.
type AggPartial struct {
	Win    vtime.Time
	Key    uint64
	Sum    float64
	Weight float64
}

// AggResult is one emitted window result of an exact-mode aggregation.
type AggResult struct {
	Query  int
	Win    vtime.Time
	Key    uint64
	Sum    float64
	Weight float64
}

// SortAggResults orders results deterministically for comparison.
func SortAggResults(rs []AggResult) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Win != b.Win {
			return a.Win < b.Win
		}
		return a.Key < b.Key
	})
}

// qExactSlot is one query's concrete window state on one slot.
type qExactSlot struct {
	agg  map[aggMapKey]*aggAcc
	join [2]map[aggMapKey][]Tuple
}

func newQExactSlot(kind OpKind) *qExactSlot {
	st := &qExactSlot{}
	if kind == OpAggregate {
		st.agg = make(map[aggMapKey]*aggAcc)
	} else {
		st.join[0] = make(map[aggMapKey][]Tuple)
		st.join[1] = make(map[aggMapKey][]Tuple)
	}
	return st
}

// exactState lazily fetches a slot's state for a query.
func (e *Engine) exactState(s *slot, qi int) *qExactSlot {
	if s.exact == nil {
		s.exact = make(map[int]*qExactSlot)
	}
	st := s.exact[qi]
	if st == nil {
		st = newQExactSlot(e.queries[qi].spec.Kind)
		s.exact[qi] = st
	}
	return st
}

// insertRun folds a whole run's weight into a query's counting-mode
// window state in one update: one decay plus one rate bump per (query,
// group) run, however many rows the run carried. wk is the run's total
// modelled weight (per-row weight × rows).
func (e *Engine) insertRun(s *slot, q *queryInst, side int, g keyspace.GroupID, wk float64) {
	c := e.qcount[q.idx]
	tau := q.spec.Window.Range.Seconds()
	c.decayToMemo(side, g, e.clock, tau, &s.decayMemo)
	c.rate[side][g] += wk / tau
}

// insert feeds one tuple into a query's window state on slot s.
func (e *Engine) insert(s *slot, q *queryInst, side int, t *Tuple, g keyspace.GroupID, w float64) {
	if !e.cfg.ExactWindows {
		c := e.qcount[q.idx]
		tau := q.spec.Window.Range.Seconds()
		c.decayToMemo(side, g, e.clock, tau, &s.decayMemo)
		c.rate[side][g] += w / tau
		return
	}

	// A moved-in key group whose state is still in flight must not be
	// probed or folded yet: a join tuple would miss matches against the
	// buffered state, an aggregate would emit before merging. Hold the
	// tuple; mergeState replays it.
	if s.pendingState[pendKey{q.idx, g}] {
		if s.held == nil {
			s.held = map[pendKey]*heldBlock{}
		}
		k := pendKey{q.idx, g}
		hb := s.held[k]
		if hb == nil {
			hb = &heldBlock{}
			s.held[k] = hb
		}
		hb.blk.AppendRow(t, e.streams[q.spec.Inputs[side].Stream].NumCols, w)
		hb.sides = append(hb.sides, uint8(side))
		return
	}

	st := e.exactState(s, q.idx)
	key := q.spec.Inputs[side].Key.KeyOf(t)
	wins := q.spec.Window.WindowsOf(t.TS)
	if q.spec.Kind == OpAggregate {
		v := float64(t.Cols[q.spec.AggCol])
		for _, win := range wins {
			k := aggMapKey{win, key}
			acc := st.agg[k]
			if acc == nil {
				acc = &aggAcc{}
				st.agg[k] = acc
			}
			acc.sum += v * w
			acc.weight += w
		}
		return
	}
	// Join: probe the opposite side, then buffer.
	opp := st.join[1-side]
	for _, win := range wins {
		k := aggMapKey{win, key}
		if ms := opp[k]; len(ms) > 0 {
			e.metrics.recordEmitted(int(s.node), q.idx, w*float64(len(ms)))
		}
		st.join[side][k] = append(st.join[side][k], *t)
	}
}

// closeExactWindows emits every window whose end passed the slot
// watermark, unless its key group is awaiting moved-in state. Queries
// and window keys are visited in sorted order: emitted results stage
// for the global results log and fold at barrier A, so their sequence
// — and the order of the per-result metric adds — must be a pure
// function of the window contents, not of map iteration.
func (e *Engine) closeExactWindows(s *slot) {
	qis := make([]int, 0, len(s.exact))
	for qi := range s.exact {
		qis = append(qis, qi)
	}
	sort.Ints(qis)
	for _, qi := range qis {
		st := s.exact[qi]
		q := e.queries[qi]
		r := vtime.Time(q.spec.Window.Range)
		if st.agg != nil {
			keys := make([]aggMapKey, 0, len(st.agg))
			for k := range st.agg {
				if k.win+r > s.wm {
					continue
				}
				if s.pendingState[pendKey{qi, e.space.GroupOf(k.key)}] {
					continue
				}
				keys = append(keys, k)
			}
			sortAggKeys(keys)
			for _, k := range keys {
				acc := st.agg[k]
				ev := s.fx.stage(evtResult)
				ev.res = AggResult{Query: qi, Win: k.win, Key: k.key, Sum: acc.sum, Weight: acc.weight}
				e.metrics.recordEmitted(int(s.node), qi, acc.weight)
				delete(st.agg, k)
			}
		}
		for side := range st.join {
			for k := range st.join[side] {
				if k.win+r > s.wm {
					continue
				}
				g := e.space.GroupOf(k.key)
				if s.pendingState[pendKey{qi, g}] {
					continue
				}
				delete(st.join[side], k)
			}
		}
	}
}

// sortAggKeys orders window-instance keys by (window start, key).
func sortAggKeys(keys []aggMapKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].win != keys[j].win {
			return keys[i].win < keys[j].win
		}
		return keys[i].key < keys[j].key
	})
}

// extractState implements the local half of the iterator's state
// movement (step 4): the window state of query qi's key group g leaves
// slot s into a fresh entry, which is staged for barrier A. The
// network legs and the courier-source RNG draw happen in
// dispatchExtract, at the barrier, in canonical slot order — see the
// second leg ("tuples sent back to the source operator") of Fig. 9.
// Window keys extract in sorted order so en.stWeight (a float sum) and
// the shipped payload order are map-iteration independent.
func (e *Engine) extractState(s *slot, nr *nodeRun, qi int, g keyspace.GroupID) {
	q := e.queries[qi]
	en := nr.newEntry()
	en.kind = entryState
	en.stQuery = qi
	en.stGroup = g
	en.epoch = e.epoch

	if e.cfg.ExactWindows {
		if st := s.exact[qi]; st != nil {
			if st.agg != nil {
				keys := make([]aggMapKey, 0, len(st.agg))
				for k := range st.agg {
					if e.space.GroupOf(k.key) == g {
						keys = append(keys, k)
					}
				}
				sortAggKeys(keys)
				for _, k := range keys {
					acc := st.agg[k]
					en.stAgg = append(en.stAgg, AggPartial{Win: k.win, Key: k.key, Sum: acc.sum, Weight: acc.weight})
					en.stWeight += acc.weight
					delete(st.agg, k)
				}
			}
			for side := range st.join {
				keys := make([]aggMapKey, 0, len(st.join[side]))
				for k := range st.join[side] {
					if e.space.GroupOf(k.key) == g {
						keys = append(keys, k)
					}
				}
				sortAggKeys(keys)
				for _, k := range keys {
					buf := st.join[side][k]
					en.stJoin[side] = append(en.stJoin[side], buf...)
					en.stWeight += float64(len(buf))
					delete(st.join[side], k)
				}
			}
		}
	} else {
		// Counting cells are engine-global; safe here because extraction
		// only happens on reconfiguration ticks, which the turbulence
		// carve-out runs single-worker (see tickTurbulent).
		c := e.qcount[qi]
		tau := q.spec.Window.Range.Seconds()
		for side := range c.rate {
			c.decayTo(side, g, e.clock, tau)
			en.stWeight += c.rate[side][g] * tau // in-window state estimate
			c.rate[side][g] = 0
		}
	}

	if !e.cfg.ExactWindows && en.stWeight == 0 {
		// Nothing to move (e.g. a non-representative member of a route
		// class in counting mode, whose state is carried by the
		// representative). Exact mode always ships, even empty, so the
		// new owner's emission hold clears.
		nr.recycle(en)
		return
	}
	if e.staged != nil {
		// Checkpoint-staged migration: the destination already holds the
		// snapshot copy of this cell, so only the since-barrier residual
		// travels. The discount ages the staged weight with the same
		// decay rule RestoreGroup uses (see stagedDiscount); the merge
		// still folds the full stWeight, so state values are identical to
		// pause-and-transfer.
		en.stStagedW = e.stagedDiscount(qi, g, en.stWeight, q.spec.Window.Range.Seconds())
	}
	s.fx.stage(evtExtract).en = en
}

// mergeState absorbs a moved key group's state at its new owner and
// clears the emission hold. With staged=true (the slot phase) the
// checkpoint fold and the outstanding-state decrement are deferred to
// barrier A; staged=false (checkpoint restore, which runs between
// ticks) applies both directly.
func (e *Engine) mergeState(s *slot, en *entry, staged bool) {
	qi := en.stQuery
	if e.cfg.ExactWindows {
		st := e.exactState(s, qi)
		for _, p := range en.stAgg {
			k := aggMapKey{p.Win, p.Key}
			acc := st.agg[k]
			if acc == nil {
				acc = &aggAcc{}
				st.agg[k] = acc
			}
			acc.sum += p.Sum
			acc.weight += p.Weight
		}
		for side := range en.stJoin {
			for i := range en.stJoin[side] {
				t := &en.stJoin[side][i]
				key := e.queries[qi].spec.Inputs[side].Key.KeyOf(t)
				for _, win := range e.queries[qi].spec.Window.WindowsOf(t.TS) {
					st.join[side][aggMapKey{win, key}] = append(st.join[side][aggMapKey{win, key}], *t)
				}
			}
		}
	} else {
		c := e.qcount[qi]
		tau := e.queries[qi].spec.Window.Range.Seconds()
		c.decayTo(0, en.stGroup, e.clock, tau)
		c.rate[0][en.stGroup] += en.stWeight / tau
	}
	k := pendKey{qi, en.stGroup}
	// An in-flight checkpoint that saw this group pending at alignment
	// completes its capture from the state that just landed.
	if staged {
		if ck := e.ckpt; ck != nil && ck.active {
			ev := s.fx.stage(evtCkptMerge)
			ev.key = k
			// Copy the payload: the entry is recycled before barrier A.
			ev.agg = append([]AggPartial(nil), en.stAgg...)
			ev.join[0] = append([]Tuple(nil), en.stJoin[0]...)
			ev.join[1] = append([]Tuple(nil), en.stJoin[1]...)
		}
		s.fx.outstanding--
	} else {
		e.ckptMergeHook(k, en)
		e.outstandingState--
	}
	delete(s.pendingState, k)
	// Replay tuples that arrived for this group while its state was in
	// flight, now in arrival order against the complete state.
	if hb := s.held[k]; hb != nil && hb.blk.Len() > 0 {
		delete(s.held, k)
		q := e.queries[qi]
		var t Tuple
		for i := 0; i < hb.blk.Len(); i++ {
			side := int(hb.sides[i])
			hb.blk.RowTuple(&t, i, e.streams[q.spec.Inputs[side].Stream].NumCols)
			e.insert(s, q, side, &t, en.stGroup, hb.blk.W[i])
		}
	}
}

// heldBlock parks the tuples of one (query, group) whose moved window
// state is in flight: a columnar block whose weight lane carries each
// row's modelled weight, with the input side per row alongside.
type heldBlock struct {
	blk   TupleBlock
	sides []uint8
}

// rows reports the parked row count; nil-safe so callers can probe a
// map entry that may already have been replayed and deleted.
func (hb *heldBlock) rows() int {
	if hb == nil {
		return 0
	}
	return hb.blk.Len()
}

// weight sums the parked rows' modelled weights.
func (hb *heldBlock) weight() float64 {
	var w float64
	for _, x := range hb.blk.W {
		w += x
	}
	return w
}

// stageStray records the iterator guard's reroute of a stray tuple (or,
// with t == nil, a folded run of identical-fate rows whose combined
// weight is w): data that reached a slot which no longer owns its key
// group under the current epoch. The actual reroute (RNG courier draw,
// network legs, insert at the true owner — which may live on another
// node) runs at barrier A in dispatchStray. A nil t stages a zero
// tuple, which is sufficient in counting mode — the reroute is
// weight-only there; exact mode always stages concrete tuples.
func (e *Engine) stageStray(s *slot, qi int, g keyspace.GroupID, w float64, t *Tuple, side int) {
	ev := s.fx.stage(evtStray)
	ev.qi, ev.g, ev.w, ev.side = qi, g, w, side
	if t != nil {
		ev.t = *t
	}
}
