package engine

import (
	"sync"
	"sync/atomic"

	"saspar/internal/cluster"
	"saspar/internal/keyspace"
	"saspar/internal/parallel"
	"saspar/internal/vtime"
)

// This file is the intra-run sharding layer: one simulated tick is
// restructured into parallel per-node compute phases separated by
// sequential merge barriers, so a single engine run can use several OS
// cores without giving up the byte-identical determinism the whole
// test suite is built on.
//
// The canonical tick is a fixed five-stage pipeline:
//
//	prologue  (sequential)  clock, meter/link refills, batch boundary,
//	                        deferred reconfigurations
//	slots     (parallel)    every node drains its partition slots;
//	                        cross-node effects are staged per slot
//	barrier A (sequential)  staged slot effects fold in rotated slot-ID
//	                        order: marker alignment counts, checkpoint
//	                        captures, state-movement dispatch (engine
//	                        RNG + network), stray reroutes, exact
//	                        results
//	routers   (parallel)    every node generates, classifies and buckets
//	                        its source tasks' tuples; link transfers are
//	                        staged with a shard-local size estimate
//	barrier B (sequential)  staged sends commit on the real network in
//	                        task-ID order, samples deliver, micro-batch
//	                        drains pace out, heartbeats flow
//
// Determinism holds by construction, not by scheduling luck: the
// parallel phases touch only state owned by one cluster node (slots,
// router tasks, CPU meter, entry pool, metrics partial) plus per-slot
// staging buffers, and every cross-node effect is applied at a barrier
// in an order derived from node/slot/task IDs. The shard count (and
// the number of goroutines that actually run) therefore cannot change
// a single output bit — which is what lets the run matrix and the
// intra-run shards share one process-wide worker budget safely.
//
// One carve-out keeps counting mode sound: while routing is being
// changed — markers in flight or moved state outstanding — two slots
// can legally touch the same engine-global counting cell (the old
// owner extracts while the new owner absorbs re-routed tuples), so
// those ticks run the identical pipeline on one worker. This mirrors
// the paper's own scaling argument: partition work is embarrassingly
// parallel per node once routing is fixed; while it is being re-fixed,
// the engine serializes. Exact mode keeps all window state slot-local
// and never needs the carve-out.

// nodeRun groups the execution state owned by one cluster node. During
// the parallel phases a nodeRun is touched by exactly one worker
// goroutine; which worker that is carries no information, because
// everything a phase computes lands either in node-owned state or in
// staging buffers folded at a barrier.
type nodeRun struct {
	id    cluster.NodeID
	slots []*slot       // this node's partition slots, ascending slot ID
	tasks []*routerTask // this node's router tasks, ascending task index

	// entryFree recycles consumed entry objects (and their payload
	// slice capacity). Per node rather than per engine: slot and router
	// phases of the owning worker pop and push without synchronization,
	// and pool membership is unobservable (entries are zeroed on
	// recycle), so migration of entries between node pools via the
	// sequential barriers cannot affect results.
	entryFree []*entry

	// Router-phase staging, reset each tick.
	lostBytes float64   // sends destroyed at dead destinations, folded at barrier B
	provEg    float64   // provisional egress bytes claimed by staged sends
	provIn    []float64 // provisional ingress bytes claimed, per destination node
}

// newEntry returns a zeroed entry from this node's pool.
func (nr *nodeRun) newEntry() *entry {
	if n := len(nr.entryFree); n > 0 {
		en := nr.entryFree[n-1]
		nr.entryFree = nr.entryFree[:n-1]
		return en
	}
	return &entry{}
}

// recycle returns a fully consumed entry to this node's pool. The
// caller must guarantee nothing aliases the entry anymore; payload
// slices are truncated (not freed) so their capacity is reused.
// Entries produced by splitSend share backing arrays with their
// remainder, but the split caps lengths so reuse through the truncated
// slices can never touch the other half.
func (nr *nodeRun) recycle(en *entry) {
	// Field-by-field reset: entry embeds the TupleBlock's 14 slice
	// headers, so a whole-struct literal assignment would copy ~half a
	// kilobyte through duffcopy on every recycled entry — a measurable
	// slice of the tick on the hot path. TestRecycleResetsEveryField
	// walks the struct by reflection, so a field added to entry without
	// a reset here fails the suite instead of leaking stale state.
	en.kind, en.stream, en.slot = 0, 0, 0
	en.arriveAt, en.watermark, en.epoch = 0, 0, 0
	en.bytes = 0
	en.plan, en.class, en.shared, en.n = nil, nil, false, 0
	blk := &en.blk
	blk.TS = blk.TS[:0]
	for c := range blk.Col {
		if blk.Col[c] != nil {
			blk.Col[c] = blk.Col[c][:0]
		}
	}
	blk.W = blk.W[:0]
	en.classBits = en.classBits[:0]
	en.groups = en.groups[:0]
	en.runs = en.runs[:0]
	en.tsBegin, en.tsStep = 0, 0
	en.extraQ, en.copies, en.scale = 0, 0, 0
	en.marker = nil
	en.stQuery, en.stGroup, en.stWeight, en.stStagedW = 0, 0, 0, 0
	en.stAgg = en.stAgg[:0]
	en.stJoin[0] = en.stJoin[0][:0]
	en.stJoin[1] = en.stJoin[1][:0]
	nr.entryFree = append(nr.entryFree, en)
}

// evtKind tags one staged cross-node effect of the slot phase.
type evtKind uint8

const (
	evtAligned     evtKind = iota // slot aligned on a marker epoch
	evtJIT                        // post-alignment compile burst (obs event)
	evtExtract                    // moved-away state ready for dispatch
	evtStray                      // iterator-guard reroute of a stray tuple
	evtResult                     // exact-mode window result emission
	evtCkptCapture                // slot's checkpoint capture fragments
	evtCkptMerge                  // landed moved state folding into a capture
)

// slotEvt is one staged effect. A flat tagged struct (not an
// interface) so the per-slot event buffers recycle their backing
// arrays without boxing allocations on the hot path.
type slotEvt struct {
	kind evtKind

	epoch int64 // evtAligned

	compiles int            // evtJIT
	dur      vtime.Duration // evtJIT

	en *entry // evtExtract: the extracted state entry awaiting dispatch

	qi   int              // evtStray
	g    keyspace.GroupID // evtStray
	w    float64          // evtStray
	side int              // evtStray
	t    Tuple            // evtStray

	res AggResult // evtResult

	frags []CkptGroup // evtCkptCapture: per-(query,group) fragments
	pend  []pendKey   // evtCkptCapture: groups pending in-flight state

	key  pendKey      // evtCkptMerge
	agg  []AggPartial // evtCkptMerge (copied: entries are recycled)
	join [2][]Tuple   // evtCkptMerge (copied)
}

// slotFx is a slot's per-tick staging buffer. Appended by the slot's
// phase worker, drained by the sequential barrier-A fold.
type slotFx struct {
	events  []slotEvt
	markers int // marker entries consumed (markersInFlight bookkeeping)

	// outstanding is the staged delta to the engine's outstanding-state
	// counter (mergeState decrements).
	outstanding int

	// entries counts deliveries consumed this tick — the per-node work
	// signal behind the shard-utilization gauges. Node-indexed, so the
	// published values are independent of the shard count.
	entries int
}

// stage appends one effect and returns a pointer to fill in.
func (fx *slotFx) stage(kind evtKind) *slotEvt {
	fx.events = append(fx.events, slotEvt{kind: kind})
	return &fx.events[len(fx.events)-1]
}

const (
	phaseSlots = iota
	phaseRouters
)

// tickTurbulent reports whether this tick must run its slot phase on
// one worker: counting-mode window state is engine-global per (query,
// group), and while markers or moved state are in flight the old and
// new owner of a moving group may both touch the same cell. Exact mode
// keeps state slot-local, so it never serializes.
func (e *Engine) tickTurbulent() bool {
	if e.cfg.ExactWindows {
		return false
	}
	return e.markersInFlight > 0 || e.outstandingState != 0
}

// acquireWorkers resolves this tick's worker count: the configured
// shard cap, clamped to the node count, then to the process-wide
// parallel budget so matrix workers × intra-run shards cannot
// oversubscribe the host. Safe to clamp arbitrarily — results are
// worker-count invariant.
func (e *Engine) acquireWorkers() int {
	want := e.shardWorkers
	if want > len(e.nodes) {
		want = len(e.nodes)
	}
	if want <= 1 {
		return 1
	}
	return 1 + parallel.AcquireTokens(want-1)
}

func (e *Engine) releaseWorkers(w int) {
	if w > 1 {
		parallel.ReleaseTokens(w - 1)
	}
}

// runPhase executes one parallel phase over every node. With one
// worker it runs inline on the calling goroutine in node-ID order —
// the allocation-free path the shards=1 benchmarks gate. With more,
// workers claim nodes from an atomic counter; the claim order is
// irrelevant to results.
func (e *Engine) runPhase(workers, kind, off int, dt vtime.Duration) {
	if workers <= 1 || len(e.nodes) == 1 {
		for _, nr := range e.nodes {
			e.phaseNode(kind, nr, off, dt)
		}
		return
	}
	if workers > len(e.nodes) {
		workers = len(e.nodes)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.nodes) {
					return
				}
				e.phaseNode(kind, e.nodes[i], off, dt)
			}
		}()
	}
	wg.Wait()
}

func (e *Engine) phaseNode(kind int, nr *nodeRun, off int, dt vtime.Duration) {
	if e.nodeDown != nil && e.nodeDown[nr.id] {
		return // crashed node: consumes nothing, produces nothing
	}
	if e.nodeRetired(nr.id) {
		return // drained node: emptied before it left, nothing to do
	}
	if kind == phaseSlots {
		e.slotPhase(nr, off)
	} else {
		e.routerPhase(nr, dt)
	}
}

// slotPhase drains one node's partition slots. The visit order is the
// global fairness rotation restricted to this node: slots with id >=
// off first, then the wrap-around — exactly the subsequence the
// pre-shard global loop gave this node, so whichever slot leads the
// claim on the node's CPU meter still rotates tick by tick.
func (e *Engine) slotPhase(nr *nodeRun, off int) {
	k := len(nr.slots)
	if k == 0 {
		return
	}
	start := 0
	for start < k && nr.slots[start].id < off {
		start++
	}
	for i := 0; i < k; i++ {
		nr.slots[(start+i)%k].process(e, nr)
	}
}

// routerPhase runs one node's source tasks: throttle update, tuple
// generation, classification, bucketing, and provisional link sizing.
// All network mutation is deferred to barrier B.
func (e *Engine) routerPhase(nr *nodeRun, dt vtime.Duration) {
	nr.provEg = 0
	for i := range nr.provIn {
		nr.provIn[i] = 0
	}
	for _, rt := range nr.tasks {
		rt.routeTick(e, nr, dt)
	}
}

// foldSlotPhase is barrier A: staged slot effects apply in the same
// rotated slot-ID order the slots were visited in, so the engine RNG
// draw sequence and the shared network budget consumption are a pure
// function of virtual time — never of shard count or goroutine
// scheduling.
func (e *Engine) foldSlotPhase(off int) {
	n := len(e.slots)
	for i := 0; i < n; i++ {
		s := e.slots[(i+off)%n]
		fx := &s.fx
		if fx.markers > 0 {
			e.markersInFlight -= fx.markers
			fx.markers = 0
		}
		if fx.outstanding != 0 {
			e.outstandingState += fx.outstanding
			fx.outstanding = 0
		}
		if e.nodeWork != nil {
			e.nodeWork[s.node] += fx.entries
		}
		fx.entries = 0
		for j := range fx.events {
			ev := &fx.events[j]
			switch ev.kind {
			case evtAligned:
				e.alignedSlots[ev.epoch]++
			case evtJIT:
				if e.obs != nil {
					e.obs.emitJIT(e.clock, ev.compiles, ev.dur)
				}
			case evtExtract:
				e.dispatchExtract(s, ev.en)
				ev.en = nil
			case evtStray:
				e.dispatchStray(s, ev)
			case evtResult:
				e.results[ev.res.Query] = append(e.results[ev.res.Query], ev.res)
			case evtCkptCapture:
				e.foldCkptCapture(ev)
				ev.frags, ev.pend = nil, nil
			case evtCkptMerge:
				e.foldCkptMerge(ev)
				ev.agg, ev.join = nil, [2][]Tuple{}
			}
		}
		fx.events = fx.events[:0]
	}
}

// dispatchExtract finishes a staged state movement (step 4 of the AQE
// protocol): pick the courier source via the engine RNG, ship both
// network legs, and enqueue the state at its new owner. Runs at
// barrier A so the RNG and the tick's shared link budget are consumed
// in canonical slot order.
func (e *Engine) dispatchExtract(origin *slot, en *entry) {
	qi := en.stQuery
	q := e.queries[qi]
	e.metrics.recordReshuffle(en.stWeight)
	if e.obs != nil {
		e.obs.reshuffled.Add(en.stWeight)
	}
	// The RNG is drawn unconditionally (determinism: the draw sequence
	// must not depend on fault state); a dead courier is then replaced
	// by the first live task so moved state is not pointlessly
	// destroyed.
	src := e.tasks[e.rng.Intn(len(e.tasks))]
	if e.nodeIsDown(src.node) {
		for _, rt := range e.tasks {
			if !e.nodeIsDown(rt.node) {
				src = rt
				break
			}
		}
	}
	// A staged cell ships only its since-barrier residual: the snapshot
	// slice pre-shipped courier→destination when the stage was set up.
	bytes := (en.stWeight - en.stStagedW) * e.streams[q.spec.Inputs[0].Stream].BytesPerTuple
	e.migAlignBytes += bytes
	if en.stStagedW > 0 {
		e.migResidualBytes += bytes
	}
	_, d1 := e.net.Send(origin.node, src.node, bytes)
	owner := int(q.assign.Partition(en.stGroup))
	_, d2 := e.net.Send(src.node, e.placement.PartitionNode(owner), bytes)
	en.slot = owner
	en.arriveAt = e.clock.Add(d1 + d2)
	en.watermark = vtime.NoWatermark
	e.outstandingState++
	e.enqueue(src, en)
}

// dispatchStray finishes a staged iterator-guard reroute: the stray
// travels back through a random source and on to its true owner, which
// absorbs it immediately (delays fold into the next tick's work).
func (e *Engine) dispatchStray(origin *slot, ev *slotEvt) {
	e.metrics.recordReshuffle(ev.w)
	if e.obs != nil {
		e.obs.reshuffled.Add(ev.w)
	}
	q := e.queries[ev.qi]
	bytes := ev.w * e.streams[q.spec.Inputs[ev.side].Stream].BytesPerTuple
	src := e.tasks[e.rng.Intn(len(e.tasks))]
	e.net.Send(origin.node, src.node, bytes)
	owner := int(q.assign.Partition(ev.g))
	if e.nodeIsDown(e.slots[owner].node) {
		// The true owner's node crashed: the stray is unrecoverable
		// until a reconfiguration reassigns the group.
		e.lostBytes += bytes
		return
	}
	e.net.Send(src.node, e.placement.PartitionNode(owner), bytes)
	target := e.slots[owner]
	e.insert(target, q, ev.side, &ev.t, ev.g, ev.w)
	e.metrics.recordProcessed(int(target.node), ev.qi, ev.w)
}

// foldCkptCapture applies one slot's staged checkpoint capture to the
// in-flight checkpoint. Fragment order within the capture is
// irrelevant: assembleCheckpoint sorts every group's payload before
// any byte or float is derived from it.
func (e *Engine) foldCkptCapture(ev *slotEvt) {
	ck := e.ckpt
	if ck == nil || !ck.active {
		return
	}
	for _, k := range ev.pend {
		ck.pending[k] = true
	}
	for i := range ev.frags {
		f := &ev.frags[i]
		cg := ck.group(f.Query, f.Group)
		cg.Agg = append(cg.Agg, f.Agg...)
		cg.Join[0] = append(cg.Join[0], f.Join[0]...)
		cg.Join[1] = append(cg.Join[1], f.Join[1]...)
	}
}

// foldCkptMerge folds a landed state transfer into the in-flight
// capture iff the capture is still waiting on it. The pending check
// runs here — not at stage time — because the mark itself may have
// been staged earlier in this very tick.
func (e *Engine) foldCkptMerge(ev *slotEvt) {
	ck := e.ckpt
	if ck == nil || !ck.active || !ck.pending[ev.key] {
		return
	}
	delete(ck.pending, ev.key)
	cg := ck.group(ev.key.query, ev.key.group)
	cg.Agg = append(cg.Agg, ev.agg...)
	cg.Join[0] = append(cg.Join[0], ev.join[0]...)
	cg.Join[1] = append(cg.Join[1], ev.join[1]...)
}

// routerMerge is barrier B: staged sends commit on the real network in
// global task-ID order — the same order the pre-shard sequential loop
// shipped in — followed by each task's micro-batch machinery and
// heartbeats. Acceptance is settled here, against real link state, so
// several shards contending for one ingress link resolve identically
// at every shard count.
func (e *Engine) routerMerge(boundary bool) {
	for _, rt := range e.tasks {
		if e.nodeDown != nil && e.nodeDown[rt.node] {
			continue
		}
		rt.deliverSamples(e)
		for i := range rt.pending {
			rt.commit(e, &rt.pending[i])
			rt.pending[i].en = nil
		}
		rt.pending = rt.pending[:0]
		if boundary {
			rt.flushHeld(e)
		}
		if e.cfg.Profile.MicroBatch {
			rt.shipDraining(e)
		}
		rt.heartbeat(e)
	}
	for _, nr := range e.nodes {
		if nr.lostBytes != 0 {
			e.lostBytes += nr.lostBytes
			nr.lostBytes = 0
		}
	}
	e.rebalanceEntryPools()
}

// rebalanceEntryPools deals the free entries evenly across the node
// pools at the end of each tick's sequential merge. Per-node pools let
// the parallel phases recycle without synchronization, but entry flow
// between nodes is asymmetric — a router's entries are recycled at the
// consuming slot's node — so without rebalancing a net-producer node
// allocates fresh entries every tick while a net-consumer pool grows
// without bound. Pool membership is unobservable (entries are zeroed
// on recycle), so redistribution cannot affect results.
func (e *Engine) rebalanceEntryPools() {
	if len(e.nodes) <= 1 {
		return
	}
	total := 0
	for _, nr := range e.nodes {
		total += len(nr.entryFree)
	}
	share := total / len(e.nodes)
	spill := e.entrySpill[:0]
	for _, nr := range e.nodes {
		if n := len(nr.entryFree); n > share {
			spill = append(spill, nr.entryFree[share:]...)
			nr.entryFree = nr.entryFree[:share]
		}
	}
	for _, nr := range e.nodes {
		if d := share - len(nr.entryFree); d > 0 {
			n := len(spill)
			nr.entryFree = append(nr.entryFree, spill[n-d:]...)
			spill = spill[:n-d]
		}
	}
	// The division remainder lands on the first node.
	if len(spill) > 0 {
		e.nodes[0].entryFree = append(e.nodes[0].entryFree, spill...)
		spill = spill[:0]
	}
	e.entrySpill = spill
}
