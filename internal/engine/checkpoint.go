package engine

import (
	"fmt"
	"math"
	"sort"

	"saspar/internal/cluster"
	"saspar/internal/keyspace"
	"saspar/internal/vtime"
)

// This file is the engine side of aligned-barrier checkpointing: the
// barrier injection, the per-slot capture at alignment, the completion
// check, and the restore path. The coordinator policy (intervals,
// stores, incremental deltas, retention) lives in internal/checkpoint.
//
// A checkpoint barrier is a marker like any other: it is broadcast on
// every (task, slot) edge and each slot blocks at it until all edges
// delivered it, so the snapshot cut is consistent — every pre-barrier
// tuple is reflected, no post-barrier tuple is. A reconfiguration in
// flight at barrier time is handled with the pendingState machinery:
// a slot that aligns while a moved-in group's state is still traveling
// marks the group pending, and mergeState folds the state into the
// capture when it lands, so the snapshot stays complete across an
// interleaved PlanDelta.

// CkptGroup is one key group's captured window state. In counting mode
// Weight holds the per-side in-window modelled tuple weight (the EWMA
// rate times the window range); in exact mode Agg/Join hold the
// concrete partials, sorted so identical runs produce identical bytes.
type CkptGroup struct {
	Query  int
	Group  keyspace.GroupID
	Weight []float64    `json:",omitempty"` // counting mode, per input side
	Agg    []AggPartial `json:",omitempty"` // exact mode aggregation partials
	Join   [2][]Tuple   // exact mode join buffers per side
}

// StateKey identifies one (query, key group) window-state cell.
type StateKey struct {
	Query int
	Group keyspace.GroupID
}

// CheckpointData is one completed checkpoint as assembled by the
// engine: every key group's state at the barrier cut, sorted by
// (Query, Group).
type CheckpointData struct {
	ID          int64
	Barrier     vtime.Time // clock when the barrier was injected
	CompletedAt vtime.Time // clock when every live slot had aligned
	Epoch       int64      // marker epoch the barrier traveled under
	Groups      []CkptGroup
	Bytes       float64 // modelled wire size of the captured state
}

// engCkpt is the in-flight capture state of one checkpoint barrier.
// The pointer on Engine stays nil until the first BeginCheckpoint, so
// checkpoint-free runs pay a single never-taken nil check per hook —
// the same discipline as nodeDown and obs.
type engCkpt struct {
	active  bool
	id      int64
	epoch   int64
	barrier vtime.Time
	// exact accumulates per-group captured state (exact mode only;
	// counting-mode state is engine-global and is read at completion).
	exact map[pendKey]*CkptGroup
	// pending marks moved-in groups whose state was in flight when
	// their new owner aligned; mergeState completes their capture.
	pending map[pendKey]bool
}

func (c *engCkpt) group(qi int, g keyspace.GroupID) *CkptGroup {
	k := pendKey{qi, g}
	cg := c.exact[k]
	if cg == nil {
		cg = &CkptGroup{Query: qi, Group: g}
		c.exact[k] = cg
	}
	return cg
}

// BeginCheckpoint injects checkpoint barrier id through the marker
// channels. The barrier claims its own epoch but does not touch
// inFlightEpoch, so reconfigurations keep their own lifecycle and the
// two marker kinds interleave freely. Returns an error while a
// previous checkpoint barrier is still aligning.
func (e *Engine) BeginCheckpoint(id int64) error {
	if e.ckpt != nil && e.ckpt.active {
		return fmt.Errorf("engine: checkpoint %d still aligning", e.ckpt.id)
	}
	if e.ckpt == nil {
		e.ckpt = &engCkpt{}
	}
	e.epoch++
	*e.ckpt = engCkpt{
		active:  true,
		id:      id,
		epoch:   e.epoch,
		barrier: e.clock,
		exact:   map[pendKey]*CkptGroup{},
		pending: map[pendKey]bool{},
	}
	e.broadcastMarker(&Marker{Epoch: e.epoch, Kind: MarkerCheckpoint, Ckpt: id})
	return nil
}

// CheckpointInFlight reports the id of the checkpoint barrier
// currently aligning, if any.
func (e *Engine) CheckpointInFlight() (int64, bool) {
	if e.ckpt == nil || !e.ckpt.active {
		return 0, false
	}
	return e.ckpt.id, true
}

// stageCheckpointCapture snapshots slot s's window state at its
// barrier alignment point (exact mode; counting-mode state is
// engine-global and is read once at completion) into a staged event;
// foldCkptCapture applies it to the in-flight capture at barrier A.
// Fragments are per (query, group) and copied by value, so the live
// state keeps mutating without aliasing the capture; their order is
// free because assembleCheckpoint sorts every group's payload before
// deriving bytes. Moved-in groups whose state is still in flight are
// marked pending instead — mergeState adds their state to the capture
// when it lands.
func (e *Engine) stageCheckpointCapture(s *slot, m *Marker) {
	ck := e.ckpt
	if ck == nil || !ck.active || ck.id != m.Ckpt {
		return // stale barrier of an abandoned checkpoint
	}
	if !e.cfg.ExactWindows {
		return
	}
	ev := s.fx.stage(evtCkptCapture)
	for k := range s.pendingState {
		ev.pend = append(ev.pend, k)
	}
	var frags []CkptGroup
	idx := map[pendKey]int{}
	grp := func(qi int, g keyspace.GroupID) int {
		k := pendKey{qi, g}
		i, ok := idx[k]
		if !ok {
			i = len(frags)
			idx[k] = i
			frags = append(frags, CkptGroup{Query: qi, Group: g})
		}
		return i
	}
	for qi, st := range s.exact {
		if st.agg != nil {
			for ak, acc := range st.agg {
				i := grp(qi, e.space.GroupOf(ak.key))
				frags[i].Agg = append(frags[i].Agg, AggPartial{Win: ak.win, Key: ak.key, Sum: acc.sum, Weight: acc.weight})
			}
		}
		for side := range st.join {
			for ak, buf := range st.join[side] {
				if len(buf) == 0 {
					continue
				}
				i := grp(qi, e.space.GroupOf(ak.key))
				frags[i].Join[side] = append(frags[i].Join[side], buf...)
			}
		}
	}
	ev.frags = frags
}

// ckptMergeHook folds a moved group's just-landed state into the
// in-flight capture when the group's new owner aligned before the
// state arrived. Called from the unstaged mergeState path (checkpoint
// restore); live slot-phase merges stage an evtCkptMerge instead.
// Entry payloads are copied by value, so entry recycling never aliases
// the capture.
func (e *Engine) ckptMergeHook(k pendKey, en *entry) {
	ck := e.ckpt
	if ck == nil || !ck.active || !ck.pending[k] {
		return
	}
	delete(ck.pending, k)
	cg := ck.group(k.query, k.group)
	cg.Agg = append(cg.Agg, en.stAgg...)
	cg.Join[0] = append(cg.Join[0], en.stJoin[0]...)
	cg.Join[1] = append(cg.Join[1], en.stJoin[1]...)
}

// ckptDropPending releases an in-flight checkpoint's wait on a moved
// group whose state entry was destroyed (dead target slot): the state
// is genuinely gone, so the checkpoint completes without it.
func (e *Engine) ckptDropPending(k pendKey) {
	if e.ckpt != nil && e.ckpt.active {
		delete(e.ckpt.pending, k)
	}
}

// ckptDropQuery removes a retired query from the in-flight capture.
func (e *Engine) ckptDropQuery(qi int) {
	ck := e.ckpt
	if ck == nil || !ck.active {
		return
	}
	for k := range ck.pending {
		if k.query == qi {
			delete(ck.pending, k)
		}
	}
	for k := range ck.exact {
		if k.query == qi {
			delete(ck.exact, k)
		}
	}
}

// CompleteCheckpoint returns the assembled checkpoint once its barrier
// fully aligned: every live slot aligned on the barrier epoch and no
// captured group is still waiting for in-flight moved state. Counting
// mode additionally waits for outstanding state transfers to merge —
// its state is engine-global, so a transfer in flight at assembly time
// would be invisible. Returns (nil, false) while incomplete or when no
// checkpoint is in flight.
func (e *Engine) CompleteCheckpoint() (*CheckpointData, bool) {
	ck := e.ckpt
	if ck == nil || !ck.active {
		return nil, false
	}
	if e.alignedSlots[ck.epoch] < e.liveSlotCount() {
		return nil, false
	}
	if e.cfg.ExactWindows {
		if len(ck.pending) > 0 {
			return nil, false
		}
	} else if e.outstandingState != 0 {
		return nil, false
	}
	d := e.assembleCheckpoint()
	ck.active = false
	ck.exact, ck.pending = nil, nil
	return d, true
}

func (e *Engine) assembleCheckpoint() *CheckpointData {
	ck := e.ckpt
	d := &CheckpointData{ID: ck.id, Barrier: ck.barrier, CompletedAt: e.clock, Epoch: ck.epoch}
	if e.cfg.ExactWindows {
		for _, cg := range ck.exact {
			if len(cg.Agg) == 0 && len(cg.Join[0]) == 0 && len(cg.Join[1]) == 0 {
				continue
			}
			sortGroupState(cg)
			d.Groups = append(d.Groups, *cg)
		}
	} else {
		for qi, q := range e.queries {
			if q.inactive {
				continue
			}
			c := e.qcount[qi]
			tau := q.spec.Window.Range.Seconds()
			for g := 0; g < e.cfg.NumGroups; g++ {
				gid := keyspace.GroupID(g)
				var total float64
				w := make([]float64, len(c.rate))
				for side := range c.rate {
					c.decayTo(side, gid, e.clock, tau)
					w[side] = c.rate[side][gid] * tau
					total += w[side]
				}
				if total <= 0 {
					continue
				}
				d.Groups = append(d.Groups, CkptGroup{Query: qi, Group: gid, Weight: w})
			}
		}
	}
	sort.Slice(d.Groups, func(i, j int) bool {
		if d.Groups[i].Query != d.Groups[j].Query {
			return d.Groups[i].Query < d.Groups[j].Query
		}
		return d.Groups[i].Group < d.Groups[j].Group
	})
	for i := range d.Groups {
		d.Bytes += e.GroupBytes(&d.Groups[i])
	}
	return d
}

// sortGroupState orders a captured group's payload deterministically:
// the engine's state maps iterate in random order, but checkpoint
// bytes must be identical for identical runs at any worker count.
func sortGroupState(cg *CkptGroup) {
	sort.Slice(cg.Agg, func(i, j int) bool {
		if cg.Agg[i].Win != cg.Agg[j].Win {
			return cg.Agg[i].Win < cg.Agg[j].Win
		}
		return cg.Agg[i].Key < cg.Agg[j].Key
	})
	for side := range cg.Join {
		buf := cg.Join[side]
		sort.SliceStable(buf, func(i, j int) bool { return tupleLess(&buf[i], &buf[j]) })
	}
}

func tupleLess(a, b *Tuple) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	for c := range a.Cols {
		if a.Cols[c] != b.Cols[c] {
			return a.Cols[c] < b.Cols[c]
		}
	}
	return false
}

// GroupBytes models the wire size of one captured group: its state
// weight times the query's primary-input tuple size — the same
// convention extractAndReturn ships moved state with.
func (e *Engine) GroupBytes(cg *CkptGroup) float64 {
	if cg.Query < 0 || cg.Query >= len(e.queries) {
		return 0
	}
	bpt := e.streams[e.queries[cg.Query].spec.Inputs[0].Stream].BytesPerTuple
	var w float64
	for _, x := range cg.Weight {
		w += x
	}
	for _, p := range cg.Agg {
		w += p.Weight
	}
	w += float64(len(cg.Join[0]) + len(cg.Join[1]))
	return w * bpt
}

// RestoreGroup re-installs one checkpointed key group's window state
// at the group's current owner. barrier is the virtual time the
// snapshot's checkpoint barrier was injected — the instant the
// captured state was current. Exact mode replays the snapshot
// through the same mergeState path a live migration uses, so held
// tuples that piled up while the group awaited state replay in arrival
// order afterwards (its tuples carry their own timestamps, so normal
// window eviction ages them; barrier is unused); counting-mode weights
// fold into the engine-global EWMA exactly once, decayed for the
// virtual time elapsed since barrier — the slice of the snapshot that
// would already have slid out of the window by restore time must not
// be re-installed. Exact-mode join buffers were flattened per window
// instance at capture (the same quirk as live state movement), so
// sliding-window joins restore at-least-once — duplicates are
// possible, exact aggregates and counting state are not affected.
// Returns the modelled bytes shipped for the restore; 0 when the query
// is gone or the owner's node is down.
func (e *Engine) RestoreGroup(cg CkptGroup, barrier vtime.Time) float64 {
	if cg.Query < 0 || cg.Query >= len(e.queries) || e.queries[cg.Query].inactive {
		return 0
	}
	q := e.queries[cg.Query]
	bytes := e.GroupBytes(&cg)
	if !e.cfg.ExactWindows {
		c := e.qcount[cg.Query]
		tau := q.spec.Window.Range.Seconds()
		// Age the snapshot to now with the same exponential decay
		// decayTo applies to live rates, so the restored state matches
		// what an uninterrupted run would still hold in-window.
		decay := 1.0
		if dt := e.clock.Sub(barrier).Seconds(); dt > 0 {
			decay = math.Exp(-dt / tau)
		}
		for side := 0; side < len(c.rate) && side < len(cg.Weight); side++ {
			c.decayTo(side, cg.Group, e.clock, tau)
			c.rate[side][cg.Group] += cg.Weight[side] * decay / tau
		}
		e.restoredBytes += bytes
		return bytes
	}
	s := e.slots[q.assign.Partition(cg.Group)]
	if e.nodeIsDown(s.node) {
		return 0
	}
	nr := e.nodes[s.node]
	en := nr.newEntry()
	en.kind = entryState
	en.stQuery = cg.Query
	en.stGroup = cg.Group
	en.stAgg = append(en.stAgg, cg.Agg...)
	en.stJoin[0] = append(en.stJoin[0], cg.Join[0]...)
	en.stJoin[1] = append(en.stJoin[1], cg.Join[1]...)
	for _, p := range cg.Agg {
		en.stWeight += p.Weight
	}
	en.stWeight += float64(len(cg.Join[0]) + len(cg.Join[1]))
	e.outstandingState++ // mergeState's decrement balances this
	e.mergeState(s, en, false)
	nr.recycle(en)
	e.restoredBytes += bytes
	return bytes
}

// RestoredBytes reports the cumulative modelled bytes of window state
// re-installed through RestoreGroup.
func (e *Engine) RestoredBytes() float64 { return e.restoredBytes }

// markStateDestroyed records that a node crash destroyed cell k's
// window state (resident on the dead node, or torn up while moving).
func (e *Engine) markStateDestroyed(k pendKey) {
	if e.destroyedState == nil {
		e.destroyedState = map[pendKey]bool{}
	}
	e.destroyedState[k] = true
}

// DrainDestroyedState returns the (query, group) cells whose window
// state node crashes destroyed since the last drain, and clears the
// record. This is the exact set a checkpoint restore may re-seed:
// cells evacuated live off a derated-but-alive node, or healed in
// place by an expiring transient, never appear here — restoring those
// would stack the snapshot on top of intact state.
func (e *Engine) DrainDestroyedState() []StateKey {
	if len(e.destroyedState) == 0 {
		return nil
	}
	out := make([]StateKey, 0, len(e.destroyedState))
	for k := range e.destroyedState {
		out = append(out, StateKey{Query: k.query, Group: k.group})
	}
	e.destroyedState = nil
	return out
}

// destroyNodeState destroys the window state resident on a crashed
// node — exact-mode slot state plus held tuples, or the counting-mode
// share of groups assigned to the node's slots — and returns its
// modelled byte size. This is the loss a checkpoint exists to bound:
// without one it is unrecoverable; with one, recovery re-seeds the
// evacuated groups from the last completed snapshot.
func (e *Engine) destroyNodeState(n cluster.NodeID) float64 {
	// lost is a float fold over map-backed state, so every map is walked
	// in sorted key order: the total must be a pure function of the
	// destroyed state, not of map iteration, for traces to stay
	// byte-identical run to run.
	var lost float64
	for _, s := range e.slots {
		if s.node != n {
			continue
		}
		qis := make([]int, 0, len(s.exact))
		for qi := range s.exact {
			qis = append(qis, qi)
		}
		sort.Ints(qis)
		for _, qi := range qis {
			st := s.exact[qi]
			bpt := e.streams[e.queries[qi].spec.Inputs[0].Stream].BytesPerTuple
			if st.agg != nil {
				keys := make([]aggMapKey, 0, len(st.agg))
				for ak := range st.agg {
					keys = append(keys, ak)
				}
				sortAggKeys(keys)
				for _, ak := range keys {
					lost += st.agg[ak].weight * bpt
					e.markStateDestroyed(pendKey{qi, e.space.GroupOf(ak.key)})
				}
			}
			for side := range st.join {
				keys := make([]aggMapKey, 0, len(st.join[side]))
				for ak := range st.join[side] {
					keys = append(keys, ak)
				}
				sortAggKeys(keys)
				for _, ak := range keys {
					lost += float64(len(st.join[side][ak])) * bpt
					e.markStateDestroyed(pendKey{qi, e.space.GroupOf(ak.key)})
				}
			}
		}
		s.exact = nil
		heldKeys := make([]pendKey, 0, len(s.held))
		for k := range s.held {
			heldKeys = append(heldKeys, k)
		}
		sort.Slice(heldKeys, func(i, j int) bool {
			if heldKeys[i].query != heldKeys[j].query {
				return heldKeys[i].query < heldKeys[j].query
			}
			return heldKeys[i].group < heldKeys[j].group
		})
		for _, k := range heldKeys {
			bpt := e.streams[e.queries[k.query].spec.Inputs[0].Stream].BytesPerTuple
			lost += s.held[k].weight() * bpt
		}
		s.held = nil
	}
	if !e.cfg.ExactWindows {
		for qi, q := range e.queries {
			if q.inactive {
				continue
			}
			c := e.qcount[qi]
			tau := q.spec.Window.Range.Seconds()
			bpt := e.streams[q.spec.Inputs[0].Stream].BytesPerTuple
			for g := 0; g < e.cfg.NumGroups; g++ {
				gid := keyspace.GroupID(g)
				if e.slots[q.assign.Partition(gid)].node != n {
					continue
				}
				e.markStateDestroyed(pendKey{qi, gid})
				for side := range c.rate {
					c.decayTo(side, gid, e.clock, tau)
					lost += c.rate[side][gid] * tau * bpt
					c.rate[side][gid] = 0
				}
			}
		}
	}
	return lost
}
