// Package cliflags holds the execution-knob flag cluster every saspar
// binary used to re-declare by hand: -shards, -batch, -workers and
// -seed. The knobs are pure execution parameters — output is
// byte-identical at any -shards/-batch value, -workers only sizes the
// run-matrix pool — so their definitions, help strings and validation
// belong in one place instead of six subcommand copies.
package cliflags

import (
	"flag"
	"fmt"

	"saspar/internal/engine"
)

// Common is the shared execution-flag cluster. Register installs the
// knobs a command uses on its FlagSet; Validate checks them all at
// once with the same messages everywhere.
type Common struct {
	// Shards caps the engine's per-tick worker goroutines
	// (0/1 = single-threaded ticks).
	Shards int
	// Batch is the generation block size (0 = engine default of 64,
	// 1 = tuple-at-a-time).
	Batch int
	// Workers sizes the run-matrix pool (0 = SASPAR_PARALLEL env, then
	// GOMAXPROCS). Only meaningful to commands that fan runs out.
	Workers int
	// Seed is the simulation seed.
	Seed int64
}

// Register installs -shards and -batch, the knobs every engine-running
// command shares.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.IntVar(&c.Shards, "shards", 0, "per-run engine shard workers (0/1 = single-threaded ticks)")
	fs.IntVar(&c.Batch, "batch", 0, "generation block size (0 = engine default of 64, 1 = tuple-at-a-time)")
}

// RegisterSeed additionally installs -seed (default 1).
func (c *Common) RegisterSeed(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", 1, "simulation seed")
}

// RegisterWorkers additionally installs -workers for commands that fan
// runs over the run-matrix pool.
func (c *Common) RegisterWorkers(fs *flag.FlagSet) {
	fs.IntVar(&c.Workers, "workers", 0, "run-matrix pool size (0 = SASPAR_PARALLEL env, then GOMAXPROCS)")
}

// Validate checks every registered knob (unregistered ones hold their
// valid zero values, so one check covers all commands).
func (c *Common) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", c.Shards)
	}
	if c.Batch < 0 || c.Batch > 1<<16 {
		return fmt.Errorf("-batch must be in [0, %d], got %d", 1<<16, c.Batch)
	}
	if c.Workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Apply copies the engine-facing knobs into an engine configuration.
// Seed is copied only when set (commands without RegisterSeed keep the
// configuration's own default).
func (c *Common) Apply(cfg *engine.Config) {
	cfg.Shards = c.Shards
	cfg.BatchSize = c.Batch
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
}
