// Package faults is the deterministic fault-scenario scheduler of the
// recovery experiments. A Scenario is a fixed script of fault events in
// virtual time — node crashes, NIC brownouts, CPU stragglers — either
// written by hand or generated from (seed, config). An Injector replays
// the script against an engine as its clock advances: faults apply and
// (for transient kinds) revert at exact virtual timestamps, so a fixed
// seed yields an identical fault trace on every run.
//
// The paper treats fault tolerance as a special case of live
// reconfiguration (Section VI cites Madsen et al.): a failed node is
// simply a node the optimizer must exclude, and recovery is an AQE
// round that evacuates its key groups. This package supplies the
// failure half of that story; detection and recovery live in
// internal/core.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"saspar/internal/cluster"
	"saspar/internal/engine"
	"saspar/internal/obs"
	"saspar/internal/vtime"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// KindCrash is a fail-stop node loss: slots stop consuming, sources
	// stop producing, queued and newly routed bytes are lost. Crashes
	// are permanent — recovery means evacuation, not restart.
	KindCrash Kind = iota
	// KindBrownout derates a node's NIC to Factor of nominal bandwidth
	// for Duration, then restores it.
	KindBrownout
	// KindStraggler derates a node's CPU to Factor of nominal compute
	// for Duration, then restores it.
	KindStraggler
)

// String names the kind for traces and flags.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindBrownout:
		return "brownout"
	case KindStraggler:
		return "straggler"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scripted fault.
type Event struct {
	Kind Kind
	Node cluster.NodeID
	// At is the virtual time the fault strikes.
	At vtime.Time
	// Duration bounds transient faults (brownout, straggler); after
	// At+Duration the node is restored. Ignored for crashes.
	Duration vtime.Duration
	// Factor is the derating applied by transient faults (fraction of
	// nominal capacity left). Ignored for crashes.
	Factor float64
}

// Scenario is an ordered fault script.
type Scenario struct {
	Events []Event
}

// Crash builds the simplest scenario: node n fails at time at.
func Crash(n cluster.NodeID, at vtime.Time) *Scenario {
	return &Scenario{Events: []Event{{Kind: KindCrash, Node: n, At: at}}}
}

// Validate checks the script against a cluster of the given size.
func (s *Scenario) Validate(nodes int) error {
	crashed := map[cluster.NodeID]bool{}
	for i, ev := range s.Events {
		if int(ev.Node) < 0 || int(ev.Node) >= nodes {
			return fmt.Errorf("faults: event %d targets node %d of %d", i, ev.Node, nodes)
		}
		switch ev.Kind {
		case KindCrash:
			if crashed[ev.Node] {
				return fmt.Errorf("faults: event %d crashes node %d twice", i, ev.Node)
			}
			crashed[ev.Node] = true
		case KindBrownout, KindStraggler:
			if ev.Factor < 0 || ev.Factor >= 1 {
				return fmt.Errorf("faults: event %d factor %v outside [0,1)", i, ev.Factor)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("faults: event %d has no duration", i)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	if len(crashed) >= nodes {
		return fmt.Errorf("faults: scenario crashes all %d nodes", nodes)
	}
	return nil
}

// Config parameterizes Generate.
type Config struct {
	Nodes int   // cluster size the scenario targets
	Seed  int64 // scenario RNG seed; same seed, same script

	Crashes    int // fail-stop node losses (distinct nodes, never node 0)
	Brownouts  int // transient NIC deratings
	Stragglers int // transient CPU deratings

	// Faults strike uniformly in [Start, Start+Span).
	Start vtime.Duration
	Span  vtime.Duration

	// Transient faults last uniformly in [MinDuration, MaxDuration] and
	// derate to a factor uniform in [MinFactor, MaxFactor].
	MinDuration, MaxDuration vtime.Duration
	MinFactor, MaxFactor     float64
}

// Generate builds a random-but-reproducible scenario: the script is a
// pure function of Config (including Seed). Crashes pick distinct
// nodes and spare node 0, so at least one node always hosts sources
// and a live slot to evacuate to.
func Generate(cfg Config) (*Scenario, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("faults: need at least 2 nodes, have %d", cfg.Nodes)
	}
	if cfg.Crashes >= cfg.Nodes {
		return nil, fmt.Errorf("faults: %d crashes would sink a %d-node cluster", cfg.Crashes, cfg.Nodes)
	}
	if cfg.Span <= 0 {
		return nil, fmt.Errorf("faults: non-positive span")
	}
	n := cfg.Crashes + cfg.Brownouts + cfg.Stragglers
	if n == 0 {
		return &Scenario{}, nil
	}
	if cfg.MinDuration <= 0 {
		cfg.MinDuration = vtime.Second
	}
	if cfg.MaxDuration < cfg.MinDuration {
		cfg.MaxDuration = cfg.MinDuration
	}
	if cfg.MaxFactor <= 0 {
		cfg.MinFactor, cfg.MaxFactor = 0.25, 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	at := func() vtime.Time {
		return vtime.Time(cfg.Start) + vtime.Time(rng.Int63n(int64(cfg.Span)))
	}
	dur := func() vtime.Duration {
		if cfg.MaxDuration == cfg.MinDuration {
			return cfg.MinDuration
		}
		return cfg.MinDuration + vtime.Duration(rng.Int63n(int64(cfg.MaxDuration-cfg.MinDuration)))
	}
	factor := func() float64 {
		return cfg.MinFactor + rng.Float64()*(cfg.MaxFactor-cfg.MinFactor)
	}
	sc := &Scenario{}
	// Crashed nodes: a shuffled draw from nodes 1..Nodes-1.
	perm := rng.Perm(cfg.Nodes - 1)
	for i := 0; i < cfg.Crashes; i++ {
		sc.Events = append(sc.Events, Event{
			Kind: KindCrash, Node: cluster.NodeID(perm[i] + 1), At: at(),
		})
	}
	for i := 0; i < cfg.Brownouts; i++ {
		sc.Events = append(sc.Events, Event{
			Kind: KindBrownout, Node: cluster.NodeID(rng.Intn(cfg.Nodes)),
			At: at(), Duration: dur(), Factor: factor(),
		})
	}
	for i := 0; i < cfg.Stragglers; i++ {
		sc.Events = append(sc.Events, Event{
			Kind: KindStraggler, Node: cluster.NodeID(rng.Intn(cfg.Nodes)),
			At: at(), Duration: dur(), Factor: factor(),
		})
	}
	sortEvents(sc.Events)
	if err := sc.Validate(cfg.Nodes); err != nil {
		return nil, err
	}
	return sc, nil
}

// sortEvents orders a script deterministically: by strike time, then
// kind, then node — ties must not depend on generation order.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Node < b.Node
	})
}

// revert is a pending restoration of a transient fault.
type revert struct {
	at   vtime.Time
	kind Kind
	node cluster.NodeID
}

// Injector replays a scenario against an engine. Call Advance with the
// engine clock after every run slice; due events apply and expired
// transient faults revert, in deterministic order.
type Injector struct {
	eng     *engine.Engine
	reg     *obs.Registry // nil = no trace
	events  []Event       // sorted by At
	next    int
	reverts []revert // sorted by at
	applied int
}

// NewInjector validates the scenario against the engine's cluster size
// and prepares the replay. The registry is optional.
func NewInjector(eng *engine.Engine, sc *Scenario, reg *obs.Registry) (*Injector, error) {
	if err := sc.Validate(eng.Config().Nodes); err != nil {
		return nil, err
	}
	evs := append([]Event(nil), sc.Events...)
	sortEvents(evs)
	return &Injector{eng: eng, reg: reg, events: evs}, nil
}

// Advance applies every event due at or before now and reverts every
// transient fault that expired. Idempotent between clock advances.
func (in *Injector) Advance(now vtime.Time) {
	// Interleave strikes and reverts in timestamp order so a brownout
	// ending at t and another starting at t resolve identically on
	// every run (reverts first: both queues are sorted, and a revert
	// scheduled at t was struck strictly before t).
	for {
		haveRevert := len(in.reverts) > 0 && in.reverts[0].at <= now
		haveEvent := in.next < len(in.events) && in.events[in.next].At <= now
		if haveRevert && (!haveEvent || in.reverts[0].at <= in.events[in.next].At) {
			rv := in.reverts[0]
			in.reverts = in.reverts[1:]
			in.revert(rv)
			continue
		}
		if !haveEvent {
			return
		}
		ev := in.events[in.next]
		in.next++
		in.apply(ev)
	}
}

func (in *Injector) apply(ev Event) {
	in.applied++
	switch ev.Kind {
	case KindCrash:
		in.eng.SetNodeDown(ev.Node, true)
	case KindBrownout:
		in.eng.SetNodeNICFactor(ev.Node, ev.Factor)
		in.scheduleRevert(ev)
	case KindStraggler:
		in.eng.SetNodeCPUFactor(ev.Node, ev.Factor)
		in.scheduleRevert(ev)
	}
	if in.reg != nil {
		in.reg.Emit(in.eng.Clock(), obs.EvFaultInjected,
			obs.S("kind", ev.Kind.String()),
			obs.I("node", int64(ev.Node)),
			obs.S("phase", "begin"),
			obs.F("factor", ev.Factor),
		)
	}
}

func (in *Injector) scheduleRevert(ev Event) {
	rv := revert{at: ev.At.Add(ev.Duration), kind: ev.Kind, node: ev.Node}
	i := sort.Search(len(in.reverts), func(i int) bool { return in.reverts[i].at > rv.at })
	in.reverts = append(in.reverts, revert{})
	copy(in.reverts[i+1:], in.reverts[i:])
	in.reverts[i] = rv
}

func (in *Injector) revert(rv revert) {
	switch rv.kind {
	case KindBrownout:
		in.eng.SetNodeNICFactor(rv.node, 1)
	case KindStraggler:
		in.eng.SetNodeCPUFactor(rv.node, 1)
	}
	if in.reg != nil {
		in.reg.Emit(in.eng.Clock(), obs.EvFaultInjected,
			obs.S("kind", rv.kind.String()),
			obs.I("node", int64(rv.node)),
			obs.S("phase", "end"),
			obs.F("factor", 1),
		)
	}
}

// Applied reports how many fault events have struck so far.
func (in *Injector) Applied() int { return in.applied }

// Done reports whether the script is fully replayed (all strikes
// applied and all transient faults reverted).
func (in *Injector) Done() bool {
	return in.next >= len(in.events) && len(in.reverts) == 0
}
