package faults

import (
	"reflect"
	"testing"

	"saspar/internal/cluster"
	"saspar/internal/engine"
	"saspar/internal/obs"
	"saspar/internal/vtime"
	"saspar/internal/workload"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Nodes = 4
	cfg.NumPartitions = 8
	cfg.NumGroups = 16
	cfg.SourceTasks = 2
	cfg.Tick = 100 * vtime.Millisecond
	cfg.ExactWindows = false
	stream := engine.StreamDef{
		Name: "s", NumCols: 2, BytesPerTuple: 100,
		NewSource: func(task int) engine.Source {
			i := int64(task) * 131
			return workload.RowAdapter(engine.GeneratorFunc(func(tu *engine.Tuple, ts vtime.Time) {
				i++
				tu.Cols[0] = i % 64
				tu.Cols[1] = 1
			}))
		},
	}
	q := engine.QuerySpec{
		ID: "q", Kind: engine.OpAggregate,
		Inputs: []engine.Input{{Stream: 0, Key: engine.KeySpec{0}}},
		Window: engine.WindowSpec{Range: vtime.Second, Slide: vtime.Second},
		AggCol: 1,
	}
	e, err := engine.New(cfg, []engine.StreamDef{stream}, []engine.QuerySpec{q})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := Config{
		Nodes: 8, Seed: 42,
		Crashes: 2, Brownouts: 3, Stragglers: 3,
		Start: 5 * vtime.Second, Span: 20 * vtime.Second,
		MinDuration: vtime.Second, MaxDuration: 4 * vtime.Second,
		MinFactor: 0.2, MaxFactor: 0.6,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scripts:\n%v\n%v", a.Events, b.Events)
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
	// Crashes target distinct nodes and spare node 0.
	crashed := map[cluster.NodeID]bool{}
	for _, ev := range a.Events {
		if ev.Kind != KindCrash {
			continue
		}
		if ev.Node == 0 {
			t.Fatal("generated scenario crashes node 0")
		}
		if crashed[ev.Node] {
			t.Fatalf("node %d crashed twice", ev.Node)
		}
		crashed[ev.Node] = true
	}
	if len(crashed) != cfg.Crashes {
		t.Fatalf("generated %d crashes, want %d", len(crashed), cfg.Crashes)
	}
}

func TestGenerateRejectsSinkingScenarios(t *testing.T) {
	if _, err := Generate(Config{Nodes: 4, Crashes: 4, Span: vtime.Second}); err == nil {
		t.Fatal("crash count == node count accepted")
	}
	if _, err := Generate(Config{Nodes: 1, Span: vtime.Second}); err == nil {
		t.Fatal("single-node cluster accepted")
	}
	if _, err := Generate(Config{Nodes: 4, Crashes: 1}); err == nil {
		t.Fatal("zero span accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []*Scenario{
		{Events: []Event{{Kind: KindCrash, Node: 9}}},
		{Events: []Event{{Kind: KindCrash, Node: 1}, {Kind: KindCrash, Node: 1}}},
		{Events: []Event{{Kind: KindBrownout, Node: 1, Factor: 1.5, Duration: vtime.Second}}},
		{Events: []Event{{Kind: KindStraggler, Node: 1, Factor: 0.5}}},
		{Events: []Event{{Kind: KindCrash, Node: 0}, {Kind: KindCrash, Node: 1}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(2); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
	ok := Crash(1, 3*vtime.Time(vtime.Second))
	if err := ok.Validate(4); err != nil {
		t.Errorf("good scenario rejected: %v", err)
	}
}

func TestInjectorAppliesAndReverts(t *testing.T) {
	e := testEngine(t)
	reg := obs.New()
	sc := &Scenario{Events: []Event{
		{Kind: KindStraggler, Node: 1, At: vtime.Time(vtime.Second), Duration: 2 * vtime.Second, Factor: 0.25},
		{Kind: KindBrownout, Node: 2, At: vtime.Time(2 * vtime.Second), Duration: vtime.Second, Factor: 0.5},
		{Kind: KindCrash, Node: 3, At: vtime.Time(4 * vtime.Second)},
	}}
	in, err := NewInjector(e, sc, reg)
	if err != nil {
		t.Fatal(err)
	}

	step := func(d vtime.Duration) {
		e.Run(d)
		in.Advance(e.Clock())
	}
	step(1500 * vtime.Millisecond) // straggler active
	if got := e.Network().NodeFactor(2); got != 1 {
		t.Fatalf("brownout applied early: NIC factor %v", got)
	}
	step(vtime.Second) // t=2.5s: both transients active
	if in.Applied() != 2 {
		t.Fatalf("applied %d events by 2.5s, want 2", in.Applied())
	}
	if got := e.Network().NodeFactor(2); got != 0.5 {
		t.Fatalf("brownout NIC factor %v, want 0.5", got)
	}
	step(vtime.Second) // t=3.5s: both transients expired
	if got := e.Network().NodeFactor(2); got != 1 {
		t.Fatalf("brownout never reverted: NIC factor %v", got)
	}
	if e.NodeDown(3) {
		t.Fatal("crash applied early")
	}
	step(vtime.Second) // t=4.5s: crash struck
	if !e.NodeDown(3) {
		t.Fatal("crash never applied")
	}
	if !in.Done() {
		t.Fatal("injector not done after the last event")
	}

	// Trace carries begin and end phases for the transients, begin only
	// for the crash.
	begins, ends := 0, 0
	for _, ev := range reg.Events() {
		if ev.Kind != obs.EvFaultInjected {
			continue
		}
		for _, kv := range ev.Attrs {
			if kv.K == "phase" && kv.V == "begin" {
				begins++
			}
			if kv.K == "phase" && kv.V == "end" {
				ends++
			}
		}
	}
	if begins != 3 || ends != 2 {
		t.Fatalf("trace phases begin=%d end=%d, want 3/2", begins, ends)
	}
}

func TestInjectorRejectsOversizedScenario(t *testing.T) {
	e := testEngine(t)
	if _, err := NewInjector(e, Crash(9, 0), nil); err == nil {
		t.Fatal("out-of-range crash node accepted")
	}
}
