package driver

import (
	"testing"

	"saspar/internal/core"
	"saspar/internal/engine"
	"saspar/internal/optimizer"
	"saspar/internal/spe"
	"saspar/internal/tpch"
	"saspar/internal/vtime"
	"saspar/internal/workload"
)

func quickEngine() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Nodes = 4
	cfg.NumPartitions = 8
	cfg.NumGroups = 32
	cfg.SourceTasks = 4
	cfg.TupleWeight = 500
	cfg.Tick = 100 * vtime.Millisecond
	return cfg
}

func quickCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.TriggerInterval = 3 * vtime.Second
	cfg.Opt = optimizer.Options{Timeout: 100 * 1e6, MaxNodes: 10000}
	return cfg
}

func quickWorkload(t *testing.T, queries int) *workload.Workload {
	t.Helper()
	cfg := tpch.DefaultConfig()
	cfg.Queries = tpch.QuerySubset(queries)
	cfg.Window = engine.WindowSpec{Range: 2 * vtime.Second, Slide: 2 * vtime.Second}
	cfg.LineitemRate = 30e6
	w, err := tpch.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunVanillaAndSaspar(t *testing.T) {
	w := quickWorkload(t, 4)
	base := Config{
		Workload: w,
		Engine:   quickEngine(),
		Core:     quickCore(),
		Warmup:   3 * vtime.Second,
		Measure:  5 * vtime.Second,
	}

	base.SUT = spe.SUT{Kind: spe.Flink}
	vanilla, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.SUT = spe.SUT{Kind: spe.Flink, Saspar: true}
	base.Repetitions = 1
	saspar, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	if vanilla.Throughput <= 0 || saspar.Throughput <= 0 {
		t.Fatalf("non-positive throughput: %v / %v", vanilla.Throughput, saspar.Throughput)
	}
	if vanilla.SUT != "Flink" || saspar.SUT != "SASPAR+Flink" {
		t.Fatalf("SUT names: %q / %q", vanilla.SUT, saspar.SUT)
	}
	// With 4 network-bound queries over shared sources, the SASPAR-ed
	// run must sustain more total throughput.
	if saspar.Throughput < vanilla.Throughput {
		t.Fatalf("SASPAR %v below vanilla %v on a shareable workload", saspar.Throughput, vanilla.Throughput)
	}
	if vanilla.Triggers != 0 {
		t.Fatal("vanilla run triggered the optimizer")
	}
	if saspar.Triggers == 0 {
		t.Fatal("SASPAR run never triggered the optimizer")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing workload accepted")
	}
}

func TestRepetitionsAveraged(t *testing.T) {
	w := quickWorkload(t, 2)
	cfg := Config{
		SUT:         spe.SUT{Kind: spe.Flink},
		Workload:    w,
		Engine:      quickEngine(),
		Core:        quickCore(),
		Warmup:      2 * vtime.Second,
		Measure:     3 * vtime.Second,
		Repetitions: 3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	// Different seeds should produce a nonzero (but small) spread.
	if res.ThroughputStd > res.Throughput/2 {
		t.Fatalf("throughput spread %v too large vs mean %v", res.ThroughputStd, res.Throughput)
	}
}
