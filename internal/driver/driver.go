// Package driver is the benchmark driver of Section V-A: it runs a
// workload against one system under test at maximum sustainable
// throughput and reports the paper's metrics. The paper's driver
// generates at peak rate and relies on backpressure to find the
// sustainable operating point; this driver does the same — offered
// rates are set high, the engine's credit-based throttle converges, and
// the measured steady-state processed rate *is* the sustainable
// throughput. Experiments run three times (different seeds) and report
// the average, as in the paper.
package driver

import (
	"fmt"
	"math"

	"saspar/internal/core"
	"saspar/internal/engine"
	"saspar/internal/spe"
	"saspar/internal/vtime"
	"saspar/internal/workload"
)

// Config describes one benchmark run.
type Config struct {
	SUT      spe.SUT
	Workload *workload.Workload

	// Engine is the base engine configuration; the profile is replaced
	// by the SUT's and Shared by the SASPAR flag.
	Engine engine.Config
	// Core is the SASPAR layer configuration; Enabled is forced to the
	// SUT's SASPAR flag.
	Core core.Config

	// Warmup and Measure are the virtual-time phases.
	Warmup  vtime.Duration
	Measure vtime.Duration

	// RateScale multiplies workload rates (1 = offered as defined;
	// drivers usually offer beyond capacity and let backpressure find
	// the sustainable point).
	RateScale float64

	// Repetitions averages this many runs with distinct seeds
	// (default 3, the paper's setting).
	Repetitions int
}

func (c *Config) withDefaults() {
	if c.RateScale <= 0 {
		c.RateScale = 1
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.Warmup <= 0 {
		c.Warmup = 5 * vtime.Second
	}
	if c.Measure <= 0 {
		c.Measure = 10 * vtime.Second
	}
}

// Result aggregates a run's metrics over its repetitions.
type Result struct {
	SUT string

	// Throughput is the paper's headline metric: sum of all queries'
	// processed rates, in modelled tuples per virtual second.
	Throughput    float64
	ThroughputStd float64 // across repetitions

	// AvgLatency is the mean event-time latency; LatencyStd the mean
	// within-run standard deviation (the paper's error bars).
	AvgLatency vtime.Duration
	LatencyStd vtime.Duration

	Reshuffled  float64 // tuples sent back to sources (Fig. 9)
	JITCompiles float64
	JITTime     vtime.Duration
	BytesNet    float64
	NetUtil     float64

	Triggers int
	Applied  int
}

// Run executes the benchmark.
func Run(cfg Config) (*Result, error) {
	cfg.withDefaults()
	if cfg.Workload == nil {
		return nil, fmt.Errorf("driver: no workload")
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}

	res := &Result{SUT: cfg.SUT.Name()}
	var thr []float64
	for rep := 0; rep < cfg.Repetitions; rep++ {
		engCfg := cfg.Engine
		engCfg.Profile = spe.Profile(cfg.SUT.Kind)
		engCfg.Seed = cfg.Engine.Seed + int64(rep)*1000003 + 1
		coreCfg := cfg.Core
		coreCfg.Enabled = cfg.SUT.Saspar

		sys, err := core.New(engCfg, cfg.Workload.Streams, cfg.Workload.Queries, coreCfg)
		if err != nil {
			return nil, fmt.Errorf("driver: %s rep %d: %w", cfg.SUT.Name(), rep, err)
		}
		cfg.Workload.ApplyRates(sys.Engine(), cfg.RateScale)

		if cfg.Warmup > 0 {
			if err := sys.Run(cfg.Warmup); err != nil {
				return nil, fmt.Errorf("driver: %s rep %d warmup: %w", cfg.SUT.Name(), rep, err)
			}
		}
		m := sys.Engine().Metrics()
		m.StartMeasurement(sys.Engine().Clock())
		netBefore := sys.Engine().Network().Stats().BytesNet
		if err := sys.Run(cfg.Measure); err != nil {
			return nil, fmt.Errorf("driver: %s rep %d: %w", cfg.SUT.Name(), rep, err)
		}
		m.StopMeasurement(sys.Engine().Clock())

		t := m.OverallThroughput()
		thr = append(thr, t)
		res.Throughput += t
		res.AvgLatency += m.AvgLatency()
		res.LatencyStd += m.LatencyStddev()
		res.Reshuffled += m.Reshuffled()
		res.JITCompiles += float64(m.JITCompiles())
		res.JITTime += m.JITTime()
		res.BytesNet += sys.Engine().Network().Stats().BytesNet - netBefore
		res.NetUtil += sys.Engine().Network().Stats().Utilization
		snap := sys.Snapshot()
		res.Triggers += snap.Triggers
		res.Applied += snap.Applied
	}
	n := float64(cfg.Repetitions)
	res.Throughput /= n
	res.AvgLatency /= vtime.Duration(n)
	res.LatencyStd /= vtime.Duration(n)
	res.Reshuffled /= n
	res.JITCompiles /= n
	res.JITTime /= vtime.Duration(n)
	res.BytesNet /= n
	res.NetUtil /= n

	var varsum float64
	for _, t := range thr {
		varsum += (t - res.Throughput) * (t - res.Throughput)
	}
	res.ThroughputStd = math.Sqrt(varsum / n)
	return res, nil
}
