package stats

import (
	"math"
	"testing"

	"saspar/internal/engine"
	"saspar/internal/keyspace"
	"saspar/internal/ml"
	"saspar/internal/vtime"
)

func vec(stream int, t vtime.Time, pairs ...int) engine.SampleVec {
	v := engine.SampleVec{Stream: engine.StreamID(stream), Time: t}
	for i := 0; i < len(pairs); i += 2 {
		v.Classes = append(v.Classes, pairs[i])
		v.Groups = append(v.Groups, keyspace.GroupID(pairs[i+1]))
	}
	return v
}

func TestCardinalityScaling(t *testing.T) {
	c := NewCollector(1, 8, 100) // each sample = 100 modelled tuples
	c.Sample(vec(0, 0, 0, 3))
	c.Sample(vec(0, 0, 0, 3))
	c.Sample(vec(0, 0, 0, 5))
	if got := c.Card(0, 0, 3); got != 200 {
		t.Fatalf("Card(g3) = %v, want 200", got)
	}
	if got := c.Card(0, 0, 5); got != 100 {
		t.Fatalf("Card(g5) = %v, want 100", got)
	}
	if got := c.Card(0, 0, 7); got != 0 {
		t.Fatalf("Card(g7) = %v, want 0", got)
	}
	if c.Samples() != 3 {
		t.Fatalf("Samples = %d, want 3", c.Samples())
	}
}

func TestSharedWithAlignment(t *testing.T) {
	// Class 0 group 1: half its tuples align with class 1's group 1,
	// half land in class 1's group 2 — the Fig. 2a example: SW = 0.5.
	c := NewCollector(1, 8, 1)
	c.Sample(vec(0, 0, 0, 1, 1, 1))
	c.Sample(vec(0, 0, 0, 1, 1, 2))
	if got := c.SW(0, 0, 1); got != 0.5 {
		t.Fatalf("SW = %v, want 0.5", got)
	}
	// Symmetric view: class 1's group 1 fully aligns with class 0.
	if got := c.SW(0, 1, 1); got != 1.0 {
		t.Fatalf("SW(c1,g1) = %v, want 1.0", got)
	}
	// A group with no observations has no sharing.
	if got := c.SW(0, 0, 7); got != 0 {
		t.Fatalf("SW(empty) = %v, want 0", got)
	}
}

func TestSWTakesMaxOverPartners(t *testing.T) {
	// Class 0 aligns 1/3 with class 1 and 2/3 with class 2 on group 0.
	c := NewCollector(1, 4, 1)
	c.Sample(vec(0, 0, 0, 0, 1, 0, 2, 0))
	c.Sample(vec(0, 0, 0, 0, 1, 3, 2, 0))
	c.Sample(vec(0, 0, 0, 0, 1, 3, 2, 3))
	want := 2.0 / 3
	if got := c.SW(0, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SW = %v, want %v (max over partners)", got, want)
	}
}

func TestOverlapMatrix(t *testing.T) {
	c := NewCollector(1, 8, 1)
	c.Sample(vec(0, 0, 0, 1, 1, 1))
	c.Sample(vec(0, 0, 0, 1, 1, 2))
	if got := c.Overlap(0, 0, 1, 1, 1); got != 0.5 {
		t.Fatalf("Overlap(c0g1->c1g1) = %v, want 0.5", got)
	}
	if got := c.Overlap(0, 0, 1, 1, 2); got != 0.5 {
		t.Fatalf("Overlap(c0g1->c1g2) = %v, want 0.5", got)
	}
	if got := c.Overlap(0, 0, 1, 1, 5); got != 0 {
		t.Fatalf("Overlap(c0g1->c1g5) = %v, want 0", got)
	}
}

func TestSWVectorAndCardVector(t *testing.T) {
	c := NewCollector(1, 4, 10)
	c.Sample(vec(0, 0, 0, 2, 1, 2))
	cv := c.CardVector(0, 0)
	if cv[2] != 10 || cv[0] != 0 {
		t.Fatalf("CardVector = %v", cv)
	}
	sv := c.SWVector(0, 0)
	if sv[2] != 1 || sv[0] != 0 {
		t.Fatalf("SWVector = %v", sv)
	}
	// Vectors are copies, not views.
	cv[2] = -1
	if c.Card(0, 0, 2) != 10 {
		t.Fatal("CardVector returned a live view")
	}
}

func TestTrainingDataAndPrediction(t *testing.T) {
	// Build a stable overlap pattern, train the forest, and check the
	// predicted SW tracks the exact SW.
	c := NewCollector(1, 8, 1)
	for i := 0; i < 400; i++ {
		g := i % 8
		// Low groups fully align between the classes, high groups never
		// do — a threshold-shaped sharing pattern a CART can represent.
		g2 := g
		if g >= 4 {
			g2 = (g + 1) % 8
		}
		c.Sample(vec(0, vtime.Time(i)*vtime.Time(vtime.Second), 0, g, 1, g2))
	}
	d := c.TrainingData(0)
	if len(d.X) == 0 {
		t.Fatal("no training rows")
	}
	f, err := ml.TrainForest(d, ml.ForestConfig{
		Trees: 50,
		Tree:  ml.TreeConfig{FeatureSubset: 6, MinLeaf: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred := c.PredictedSW(f, 0, 0, []int{1})
	for g := 0; g < 8; g++ {
		exact := c.SW(0, 0, keyspace.GroupID(g))
		if math.Abs(pred[g]-exact) > 0.3 {
			t.Fatalf("group %d: predicted SW %v far from exact %v", g, pred[g], exact)
		}
	}
}

func TestDriftDetection(t *testing.T) {
	c := NewCollector(1, 4, 1)
	// Epoch 1: uniform over groups 0 and 1.
	for i := 0; i < 100; i++ {
		c.Sample(vec(0, 0, 0, i%2))
	}
	c.Reset(vtime.Time(vtime.Second))
	if got := c.Drift(0); got != 0 {
		t.Fatalf("drift right after reset = %v, want 0 (no data yet)", got)
	}
	// Epoch 2: identical distribution — drift ~0.
	for i := 0; i < 100; i++ {
		c.Sample(vec(0, 0, 0, i%2))
	}
	if got := c.Drift(0); got > 1e-9 {
		t.Fatalf("stationary drift = %v, want 0", got)
	}
	c.Reset(vtime.Time(2 * vtime.Second))
	// Epoch 3: everything moved to groups 2 and 3 — disjoint, L1 = 2.
	for i := 0; i < 100; i++ {
		c.Sample(vec(0, 0, 0, 2+i%2))
	}
	if got := c.Drift(0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("disjoint drift = %v, want 2", got)
	}
}

func TestGroupDriftLocalizesMovement(t *testing.T) {
	c := NewCollector(1, 4, 1)
	// Epoch 1: half the volume on group 0, half on group 1.
	for i := 0; i < 100; i++ {
		c.Sample(vec(0, 0, 0, i%2))
	}
	c.Reset(vtime.Time(vtime.Second))
	if gd := c.GroupDrift(0); gd[0] != 0 || gd[1] != 0 {
		t.Fatalf("drift right after reset = %v, want zeros (no data yet)", gd)
	}
	// Epoch 2: group 1's share moved to group 2; group 0 held still.
	for i := 0; i < 100; i++ {
		g := 0
		if i%2 == 1 {
			g = 2
		}
		c.Sample(vec(0, 0, 0, g))
	}
	gd := c.GroupDrift(0)
	if math.Abs(gd[1]-0.5) > 1e-9 || math.Abs(gd[2]-0.5) > 1e-9 {
		t.Fatalf("moved groups drift = %v, want 0.5 at groups 1 and 2", gd)
	}
	if gd[0] > 1e-9 || gd[3] > 1e-9 {
		t.Fatalf("stationary groups drifted: %v", gd)
	}
	// The per-group decomposition must tile the stream-level L1.
	var sum float64
	for _, d := range gd {
		sum += d
	}
	if math.Abs(sum-c.Drift(0)) > 1e-9 {
		t.Fatalf("sum of group drifts %v != stream drift %v", sum, c.Drift(0))
	}
}

func TestResetClearsCounts(t *testing.T) {
	c := NewCollector(2, 4, 1)
	c.Sample(vec(1, 0, 0, 2))
	c.Reset(0)
	if c.Samples() != 0 || c.Card(1, 0, 2) != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestClassesEnumeration(t *testing.T) {
	c := NewCollector(1, 4, 1)
	c.Sample(vec(0, 0, 3, 1, 7, 2))
	got := map[int]bool{}
	for _, ci := range c.Classes(0) {
		got[ci] = true
	}
	if !got[3] || !got[7] || len(got) != 2 {
		t.Fatalf("Classes = %v, want {3,7}", got)
	}
}

func TestCrossKeyLaneIsolation(t *testing.T) {
	// Regression: crossKey packed ids into 16-bit lanes without masking,
	// so a group id one past the lane smeared into the neighbouring
	// class lane and (c1=0, g1=65536) collided with (c1=1, g1=0),
	// corrupting the ML overlap matrix.
	overflow := crossKey(0, keyspace.GroupID(MaxGroups), 0, 0)
	smeared := crossKey(1, 0, 0, 0)
	if overflow == smeared {
		t.Fatalf("group id %d smeared into the class lane: key %#x", MaxGroups, overflow)
	}
	// A negative id must stay confined to its own lane too, not
	// sign-extend across all four.
	neg := crossKey(0, -1, 0, 0)
	if neg>>48 != 0 || uint16(neg>>16) != 0 || uint16(neg) != 0 {
		t.Fatalf("negative group id leaked out of its lane: key %#x", neg)
	}
	// In-range ids round-trip exactly through the TrainingData unpacking.
	key := crossKey(3, 41, 7, 65535)
	c1, g1 := int(key>>48), keyspace.GroupID(key>>32&0xFFFF)
	c2, g2 := int(key>>16&0xFFFF), keyspace.GroupID(key&0xFFFF)
	if c1 != 3 || g1 != 41 || c2 != 7 || g2 != 65535 {
		t.Fatalf("round-trip gave (%d,%d,%d,%d), want (3,41,7,65535)", c1, g1, c2, g2)
	}
	// Distinct in-range tuples must map to distinct keys.
	if crossKey(1, 2, 3, 4) == crossKey(1, 2, 3, 5) || crossKey(1, 2, 3, 4) == crossKey(2, 1, 3, 4) {
		t.Fatal("distinct tuples collided")
	}
}

func TestNewCollectorRejectsOversizedGroupSpace(t *testing.T) {
	// Regression: group counts beyond the 16-bit crossKey lane used to be
	// accepted and collide silently; now they are refused up front.
	defer func() {
		if recover() == nil {
			t.Fatalf("NewCollector accepted %d groups (> %d-entry lane)", MaxGroups+1, MaxGroups)
		}
	}()
	NewCollector(1, MaxGroups+1, 1)
}

func TestNewCollectorValidation(t *testing.T) {
	for _, args := range [][3]interface{}{} {
		_ = args
	}
	bad := []struct {
		s, g  int
		scale float64
	}{
		{0, 4, 1}, {1, 0, 1}, {1, 4, 0},
	}
	for i, b := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewCollector(b.s, b.g, b.scale)
		}()
	}
}
