// Package stats implements SASPAR's statistics collection (Section II
// and the ML part of Section IV): per-(query, key-group) cardinalities,
// the SharedWith sharing coefficients (the triangles of Fig. 2a), the
// full cross-group overlap matrix used to train the random forest, and
// a drift signal the trigger policy can watch.
//
// The collector consumes the engine's routed-tuple samples: each sample
// carries, for one concrete tuple, the key group it falls into under
// every route class of its stream. Counts are scaled back to modelled
// tuples by a constant factor (sampling interval × tuple weight).
package stats

import (
	"fmt"
	"math"
	"sort"

	"saspar/internal/engine"
	"saspar/internal/keyspace"
	"saspar/internal/ml"
	"saspar/internal/vtime"
)

// Collector accumulates statistics for one engine run. It is driven by
// the engine's single-threaded tick loop and performs no locking.
type Collector struct {
	numStreams int
	numGroups  int
	scale      float64 // modelled tuples represented per sample

	streams []*streamStats
	samples int
	from    vtime.Time // epoch start
	now     vtime.Time

	// prev holds the previous epoch's normalized per-class group
	// distributions for drift detection.
	prev []map[int][]float64
}

type streamStats struct {
	// card[class][group]: scaled sample counts.
	card map[int][]float64
	// aligned[pair(c1,c2)][group]: co-occurrence of the SAME group id
	// under both classes — the statistic Eq. 4's SharedWith needs.
	aligned map[uint64][]float64
	// cross[pack(c1,g1,c2,g2)]: full overlap counts for ML training.
	cross map[uint64]float64
}

func newStreamStats() *streamStats {
	return &streamStats{
		card:    map[int][]float64{},
		aligned: map[uint64][]float64{},
		cross:   map[uint64]float64{},
	}
}

// crossLaneBits is the width of each id lane in a crossKey. Group and
// class ids must fit the lane or distinct (class, group) pairs would
// silently collide and corrupt the overlap matrix.
const crossLaneBits = 16

// MaxGroups is the largest group count a Collector accepts: the overlap
// matrix packs group ids into 16-bit crossKey lanes.
const MaxGroups = 1 << crossLaneBits

// NewCollector builds a collector. scale is the number of modelled
// tuples each sample represents (sampling interval × tuple weight).
func NewCollector(numStreams, numGroups int, scale float64) *Collector {
	if numStreams <= 0 || numGroups <= 0 || scale <= 0 {
		panic(fmt.Sprintf("stats: invalid collector dimensions %d/%d/%v", numStreams, numGroups, scale))
	}
	if numGroups > MaxGroups {
		panic(fmt.Sprintf("stats: %d groups exceed the %d-entry crossKey lane", numGroups, MaxGroups))
	}
	c := &Collector{
		numStreams: numStreams,
		numGroups:  numGroups,
		scale:      scale,
		streams:    make([]*streamStats, numStreams),
		prev:       make([]map[int][]float64, numStreams),
	}
	for i := range c.streams {
		c.streams[i] = newStreamStats()
		c.prev[i] = map[int][]float64{}
	}
	return c
}

func pairKey(c1, c2 int) uint64 { return uint64(c1)<<32 | uint64(uint32(c2)) }

// crossKey packs two (class, group) ids into four 16-bit lanes. Each
// lane is masked: an id wider than its lane (or a sign-extended
// negative) must not smear into its neighbours — NewCollector bounds
// numGroups so in-range ids round-trip exactly.
func crossKey(c1 int, g1 keyspace.GroupID, c2 int, g2 keyspace.GroupID) uint64 {
	return uint64(uint16(c1))<<48 | uint64(uint16(g1))<<32 | uint64(uint16(c2))<<16 | uint64(uint16(g2))
}

// Sample implements engine.Sampler.
func (c *Collector) Sample(v engine.SampleVec) {
	ss := c.streams[v.Stream]
	c.samples++
	c.now = v.Time
	k := len(v.Classes)
	for i := 0; i < k; i++ {
		ci, gi := v.Classes[i], v.Groups[i]
		cv := ss.card[ci]
		if cv == nil {
			cv = make([]float64, c.numGroups)
			ss.card[ci] = cv
		}
		cv[gi] += c.scale
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			cj, gj := v.Classes[j], v.Groups[j]
			if gi == gj {
				av := ss.aligned[pairKey(ci, cj)]
				if av == nil {
					av = make([]float64, c.numGroups)
					ss.aligned[pairKey(ci, cj)] = av
				}
				av[gi] += c.scale
			}
			ss.cross[crossKey(ci, gi, cj, gj)] += c.scale
		}
	}
}

// Samples reports how many tuples were sampled this epoch.
func (c *Collector) Samples() int { return c.samples }

// Card reports the scaled cardinality of (stream, class, group).
func (c *Collector) Card(stream, class int, g keyspace.GroupID) float64 {
	if cv := c.streams[stream].card[class]; cv != nil {
		return cv[g]
	}
	return 0
}

// CardVector returns a copy of the per-group cardinalities of a class.
func (c *Collector) CardVector(stream, class int) []float64 {
	out := make([]float64, c.numGroups)
	if cv := c.streams[stream].card[class]; cv != nil {
		copy(out, cv)
	}
	return out
}

// SW reports the SharedWith coefficient of (stream, class, group): the
// largest fraction of the group's tuples that also fall into the same
// group id under some other class — the alignment statistic the MIP
// model's max-sharing term consumes (DESIGN.md §1).
func (c *Collector) SW(stream, class int, g keyspace.GroupID) float64 {
	ss := c.streams[stream]
	cv := ss.card[class]
	if cv == nil || cv[g] == 0 {
		return 0
	}
	var best float64
	for other := range ss.card {
		if other == class {
			continue
		}
		if av := ss.aligned[pairKey(class, other)]; av != nil && av[g] > best {
			best = av[g]
		}
	}
	sw := best / cv[g]
	if sw > 1 {
		sw = 1
	}
	return sw
}

// SWVector returns the per-group SharedWith coefficients of a class.
func (c *Collector) SWVector(stream, class int) []float64 {
	out := make([]float64, c.numGroups)
	for g := range out {
		out[g] = c.SW(stream, class, keyspace.GroupID(g))
	}
	return out
}

// Overlap reports the fraction of (class1, g1)'s tuples that fall into
// (class2, g2) — the full triangle statistic of Fig. 2a.
func (c *Collector) Overlap(stream, class1 int, g1 keyspace.GroupID, class2 int, g2 keyspace.GroupID) float64 {
	ss := c.streams[stream]
	cv := ss.card[class1]
	if cv == nil || cv[g1] == 0 {
		return 0
	}
	return ss.cross[crossKey(class1, g1, class2, g2)] / cv[g1]
}

// Classes returns the class ids observed on a stream this epoch, in
// ascending order so downstream consumers stay deterministic.
func (c *Collector) Classes(stream int) []int {
	var out []int
	for ci := range c.streams[stream].card {
		out = append(out, ci)
	}
	sort.Ints(out)
	return out
}

// TrainingData converts this epoch's overlap observations into the
// paper's random-forest dataset. The six model parameters of Section IV
// map to feature columns (source class, source group, destination
// class, destination group, timestamp) plus the label (shared-tuple
// percentage); a derived same-group indicator is appended so trees can
// express the alignment relation directly even under feature
// subsampling.
func (c *Collector) TrainingData(stream int) *ml.Dataset {
	ss := c.streams[stream]
	d := &ml.Dataset{}
	ts := c.now.Seconds()
	// Row order must be deterministic: forest training bootstraps by row
	// index, so map-order rows would make every trained model — and
	// every figure derived from one — differ run to run.
	keys := make([]uint64, 0, len(ss.cross))
	for key := range ss.cross {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		cnt := ss.cross[key]
		c1 := int(key >> 48)
		g1 := keyspace.GroupID(key >> 32 & 0xFFFF)
		c2 := int(key >> 16 & 0xFFFF)
		g2 := keyspace.GroupID(key & 0xFFFF)
		cv := ss.card[c1]
		if cv == nil || cv[g1] == 0 {
			continue
		}
		d.X = append(d.X, featureRow(c1, g1, c2, g2, ts))
		d.Y = append(d.Y, cnt/cv[g1])
	}
	// Explicit zero rows for same-group pairs that never co-occurred:
	// without them the forest would extrapolate sharing into group
	// alignments that do not exist.
	classes := make([]int, 0, len(ss.card))
	for c1 := range ss.card {
		classes = append(classes, c1)
	}
	sort.Ints(classes)
	for _, c1 := range classes {
		cv := ss.card[c1]
		for _, c2 := range classes {
			if c1 == c2 {
				continue
			}
			for g := 0; g < c.numGroups; g++ {
				if cv[g] == 0 {
					continue
				}
				if _, seen := ss.cross[crossKey(c1, keyspace.GroupID(g), c2, keyspace.GroupID(g))]; seen {
					continue
				}
				d.X = append(d.X, featureRow(c1, keyspace.GroupID(g), c2, keyspace.GroupID(g), ts))
				d.Y = append(d.Y, 0)
			}
		}
	}
	return d
}

// PredictedSW computes a class's per-group SharedWith coefficients from
// a trained forest instead of the exact aligned counts (the paper's ML
// path for large query counts). otherClasses are the candidate sharing
// partners.
func (c *Collector) PredictedSW(f *ml.Forest, stream, class int, otherClasses []int) []float64 {
	out := make([]float64, c.numGroups)
	ts := c.now.Seconds()
	for g := range out {
		var best float64
		for _, other := range otherClasses {
			if other == class {
				continue
			}
			if p := f.Predict(featureRow(class, keyspace.GroupID(g), other, keyspace.GroupID(g), ts)); p > best {
				best = p
			}
		}
		if best > 1 {
			best = 1
		}
		if best < 0 {
			best = 0
		}
		out[g] = best
	}
	return out
}

// Drift reports, per stream, the maximum L1 distance between any
// class's current normalized group distribution and its previous-epoch
// distribution (0 = stationary, 2 = disjoint). The trigger policy uses
// it to decide whether re-optimization is worthwhile.
func (c *Collector) Drift(stream int) float64 {
	ss := c.streams[stream]
	var worst float64
	for ci, cv := range ss.card {
		prev := c.prev[stream][ci]
		if prev == nil {
			continue
		}
		cur := normalize(cv)
		var l1 float64
		for g := range cur {
			l1 += math.Abs(cur[g] - prev[g])
		}
		if l1 > worst {
			worst = l1
		}
	}
	return worst
}

// GroupDrift reports, per key group, the largest absolute change of
// the group's normalized share under any class of the stream since the
// previous epoch. It is the per-group decomposition of Drift: the
// trigger policy uses the stream-level L1 to decide WHETHER to
// re-optimize, and this vector to decide WHICH groups are worth
// re-placing (the greedy tier's incremental refine pass). Classes with
// no previous-epoch archive contribute nothing, mirroring Drift.
func (c *Collector) GroupDrift(stream int) []float64 {
	out := make([]float64, c.numGroups)
	ss := c.streams[stream]
	for ci, cv := range ss.card {
		prev := c.prev[stream][ci]
		if prev == nil {
			continue
		}
		cur := normalize(cv)
		for g := range cur {
			if d := math.Abs(cur[g] - prev[g]); d > out[g] {
				out[g] = d
			}
		}
	}
	return out
}

// Reset closes the current statistics epoch: distributions are archived
// for drift detection and counters cleared.
func (c *Collector) Reset(now vtime.Time) {
	for si, ss := range c.streams {
		archived := map[int][]float64{}
		for ci, cv := range ss.card {
			archived[ci] = normalize(cv)
		}
		c.prev[si] = archived
		c.streams[si] = newStreamStats()
	}
	c.samples = 0
	c.from = now
	c.now = now
}

// featureRow builds the forest feature vector for one (source class,
// source group) → (destination class, destination group) pair.
func featureRow(c1 int, g1 keyspace.GroupID, c2 int, g2 keyspace.GroupID, ts float64) []float64 {
	same := 0.0
	if g1 == g2 {
		same = 1
	}
	return []float64{float64(c1), float64(g1), float64(c2), float64(g2), ts, same}
}

func normalize(v []float64) []float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	out := make([]float64, len(v))
	if sum == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / sum
	}
	return out
}
