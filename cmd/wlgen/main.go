// Command wlgen inspects and materializes the benchmark workloads: it
// prints the query inventory of a workload and can emit a sample of
// generated tuples as CSV, for eyeballing distributions or feeding
// external tools.
//
// Usage:
//
//	wlgen -workload tpch|ajoin|gcm [-queries N] [-sample N] [-stream I]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"saspar/internal/engine"
	"saspar/internal/vtime"
	"saspar/internal/workload"

	// Blank imports run the workload registrations.
	_ "saspar/internal/ajoinwl"
	_ "saspar/internal/gcm"
	_ "saspar/internal/tpch"
)

func main() {
	var (
		wlName  = flag.String("workload", "tpch", "workload: "+strings.Join(workload.Names(), ", "))
		queries = flag.Int("queries", 14, "query count")
		sample  = flag.Int("sample", 0, "emit N sample tuples as CSV")
		stream  = flag.Int("stream", 0, "stream index for -sample")
	)
	flag.Parse()

	w, err := workload.Open(*wlName, workload.Options{Queries: *queries})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}

	if *sample > 0 {
		if *stream < 0 || *stream >= len(w.Streams) {
			fmt.Fprintf(os.Stderr, "wlgen: stream %d out of range\n", *stream)
			os.Exit(1)
		}
		def := w.Streams[*stream]
		src := def.NewSource(0)
		var blk engine.TupleBlock
		blk.Resize(*sample, def.NumCols)
		for i := range blk.TS {
			blk.TS[i] = vtime.Time(i) * vtime.Time(vtime.Millisecond)
		}
		src.NextBlock(&blk, 0, *sample)
		cols := make([]string, def.NumCols)
		for i := range cols {
			cols[i] = fmt.Sprintf("c%d", i)
		}
		fmt.Printf("ts,%s\n", strings.Join(cols, ","))
		for i := 0; i < *sample; i++ {
			vals := make([]string, def.NumCols)
			for c := 0; c < def.NumCols; c++ {
				vals[c] = fmt.Sprintf("%d", blk.Col[c][i])
			}
			fmt.Printf("%d,%s\n", int64(blk.TS[i]), strings.Join(vals, ","))
		}
		return
	}

	fmt.Printf("workload %s: %d streams, %d queries\n\n", w.Name, len(w.Streams), len(w.Queries))
	for i, s := range w.Streams {
		fmt.Printf("stream %d: %-12s %2d columns, %3.0f B/tuple, offered %s tuples/s\n",
			i, s.Name, s.NumCols, s.BytesPerTuple, vtime.FormatRate(w.Rates[i]))
	}
	fmt.Println()
	for _, q := range w.Queries {
		kind := "agg "
		if q.Kind == engine.OpJoin {
			kind = "join"
		}
		var ins []string
		for _, in := range q.Inputs {
			ins = append(ins, fmt.Sprintf("s%d key%v", in.Stream, in.Key))
		}
		fmt.Printf("%-10s %s  window %v/%v  %s\n",
			q.ID, kind, q.Window.Range, q.Window.Slide, strings.Join(ins, " ⋈ "))
	}
}
