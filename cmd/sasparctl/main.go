// Command sasparctl drives the simulated cluster interactively. It has
// seven subcommands:
//
//	sasparctl run      — benchmark one workload against one SUT and
//	                     print the paper's metrics (the single-cell
//	                     version of cmd/figures)
//	sasparctl inspect  — run a SASPAR system with live telemetry
//	                     enabled and dump the control-plane event trace
//	                     plus a Prometheus-format metrics snapshot
//	sasparctl faults   — run seeded crash-recovery scenarios and report
//	                     time-to-recover and the sustained-throughput
//	                     dip while degraded
//	sasparctl checkpoints — run a system with the aligned-barrier
//	                     checkpoint coordinator armed (optionally with a
//	                     scripted crash) and list the snapshot store:
//	                     per-checkpoint id, kind, barrier-to-alignment
//	                     time, groups, and modelled bytes
//	sasparctl serve    — wall-clock serving mode: listen for real
//	                     tuples (binary framing on -addr, JSON on
//	                     -http) and drive the engine with them; -http
//	                     also serves /report and Prometheus /metrics
//	sasparctl blast    — loopback load generator: stream
//	                     workload-generated blocks at a serve instance
//	                     as fast as it accepts and report Mtuples/sec
//	sasparctl elastic  — run the flash-crowd workload against the
//	                     elastic autoscaler and dump the scale-out/in
//	                     episode: join/drain decisions, nodes vs time,
//	                     and the SLO-violation account
//
// Invoking sasparctl with bare flags (no subcommand) behaves as "run",
// keeping older scripts working.
//
// Usage:
//
//	sasparctl run -workload tpch|ajoin|gcm -sut SASPAR+Flink|Flink|...
//	          [-queries N] [-nodes N] [-partitions N] [-groups N]
//	          [-rate R] [-warmup D] [-measure D] [-drift D] [-seed S]
//	          [-shards N] [-batch N]
//	sasparctl inspect [-workload W] [-queries N] [-duration D]
//	          [-drift D] [-rate R] [-events N] [-seed S] [-shards N]
//	          [-batch N]
//	sasparctl faults [-seeds N] [-workers N] [-full] [-nodes N] [-rate R]
//	          [-shards N] [-batch N]
//	sasparctl checkpoints [-interval D] [-retention N] [-incremental]
//	          [-duration D] [-crash] [-dir PATH] [-seed S] [-shards N]
//	          [-batch N]
//	sasparctl serve [-addr HOST:PORT] [-http HOST:PORT] [-workload W]
//	          [-queries N] [-nodes N] [-groups N] [-tasks N] [-for D]
//	          [-ring N] [-blockrows N] [-seed S] [-shards N] [-batch N]
//	sasparctl blast -addr HOST:PORT [-workload W] [-queries N]
//	          [-tasks N] [-rows N] [-for D] [-blockrows N]
//	          [-report URL]
//	sasparctl elastic [-workload flash] [-queries N] [-nodes N]
//	          [-groups N] [-rate R] [-duration D] [-nic B]
//	          [-autoscale] [-autoscale-max N] [-autoscale-high W]
//	          [-autoscale-low W] [-autoscale-step N] [-autoscale-poll D]
//	          [-events N] [-seed S] [-shards N] [-batch N]
//
// -shards parallelizes each run's engine ticks across that many
// workers (intra-run sharding); -batch sets the generation block size
// of the columnar data plane (0 = the engine default of 64, 1 =
// tuple-at-a-time). Both are pure execution knobs: output is
// byte-identical at any value.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"
	"time"

	"saspar/internal/bench"
	"saspar/internal/checkpoint"
	"saspar/internal/cliflags"
	"saspar/internal/core"
	"saspar/internal/driver"
	"saspar/internal/elastic"
	"saspar/internal/engine"
	"saspar/internal/faults"
	"saspar/internal/obs"
	"saspar/internal/optimizer"
	"saspar/internal/runtime"
	"saspar/internal/spe"
	"saspar/internal/vtime"
	"saspar/internal/workload"

	// Blank imports run the workload registrations.
	_ "saspar/internal/ajoinwl"
	_ "saspar/internal/flashwl"
	_ "saspar/internal/gcm"
	_ "saspar/internal/tpch"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		runCmd(args)
	case "inspect":
		inspectCmd(args)
	case "faults":
		faultsCmd(args)
	case "checkpoints":
		checkpointsCmd(args)
	case "serve":
		serveCmd(args)
	case "blast":
		blastCmd(args)
	case "elastic":
		elasticCmd(args)
	default:
		fail(fmt.Errorf("unknown subcommand %q (try run, inspect, faults, checkpoints, serve, blast, elastic)", cmd))
	}
}

// serveCmd runs the wall-clock serving loop: the same engine + SASPAR
// stack as run/inspect, but fed by network ingest instead of
// synthesized tuples. TupleWeight is 1 — every served tuple is a real
// one.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var cf cliflags.Common
	var (
		addr      = fs.String("addr", "127.0.0.1:7420", "TCP listen address for binary-framing ingest (empty = disabled)")
		httpAddr  = fs.String("http", "127.0.0.1:7421", "HTTP listen address for /ingest, /report, /metrics (empty = disabled)")
		wlName    = fs.String("workload", "gcm", "workload schema and queries: "+strings.Join(workload.Names(), ", "))
		queries   = fs.Int("queries", 2, "query count")
		nodes     = fs.Int("nodes", 4, "cluster nodes")
		groups    = fs.Int("groups", 32, "key groups")
		tasks     = fs.Int("tasks", 1, "source tasks per stream (= ingest rings per stream)")
		runFor    = fs.Duration("for", 0, "wall-clock serving duration (0 = until interrupt)")
		ring      = fs.Int("ring", 64, "ingest ring capacity, blocks per (stream, task)")
		blockrows = fs.Int("blockrows", 4096, "rows per ingest block")
		greedyAt  = fs.Int("greedy-threshold", 0, "groups×partitions size at which the optimizer switches to the one-pass greedy tier (0 = default, negative = never)")
		refineAt  = fs.Float64("refine-drift", 0, "per-group drift above which a drift-fired round re-places only the moved groups (0 = always full re-solve)")
	)
	cf.Register(fs)
	cf.RegisterSeed(fs)
	fs.Parse(args)
	if err := cf.Validate(); err != nil {
		fail(err)
	}

	w, err := workload.Open(*wlName, workload.Options{
		Queries: *queries,
		Window:  engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second},
		Rate:    1e6, // placeholder past validation; serving ignores rates
	})
	if err != nil {
		fail(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = *nodes
	engCfg.NumPartitions = 2 * *nodes
	engCfg.NumGroups = *groups
	engCfg.SourceTasks = *tasks
	engCfg.TupleWeight = 1
	// Serving answers queries with concrete window state — metered
	// approximations are for the virtual-time experiments only.
	engCfg.ExactWindows = true
	cf.Apply(&engCfg)

	coreCfg := core.DefaultConfig()
	coreCfg.TriggerInterval = 8 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 200e6, GreedyThreshold: *greedyAt}
	coreCfg.RefineDrift = *refineAt
	coreCfg.Obs = obs.New()

	srv, err := runtime.NewServer(runtime.Config{
		Workload:   w,
		Engine:     engCfg,
		Core:       coreCfg,
		Addr:       *addr,
		HTTPAddr:   *httpAddr,
		RingBlocks: *ring,
		BlockRows:  *blockrows,
	})
	if err != nil {
		fail(err)
	}
	if err := srv.Start(); err != nil {
		fail(err)
	}
	fmt.Printf("serving %s (%d queries) — tcp %s  http %s\n", w.Name, len(w.Queries), srv.Addr(), srv.HTTPAddr())

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	if *runFor > 0 {
		select {
		case <-time.After(*runFor):
		case <-interrupt:
		}
	} else {
		<-interrupt
	}
	srv.Stop()

	rep := srv.Report()
	fmt.Printf("served       %d rows in %.1fs wall (%.2f Mtuples/s), virtual clock %s\n",
		rep.IngestedRows, rep.UptimeSec, rep.RowsPerSec/1e6, rep.VirtualTime)
	fmt.Printf("ingest       %0.f blocks, %.0f bounced off full rings, %.0f recycled\n",
		rep.IngestBlocks, rep.RingFull, rep.Recycled)
	fmt.Printf("optimizer    %d triggers, %d plans applied\n", rep.Triggers, rep.Applied)
	for _, q := range rep.Queries {
		fmt.Printf("query        %-20s %d results\n", q.ID, q.Results)
	}
}

// blastCmd floods a serve instance over loopback with
// workload-generated blocks and reports the sustained ingest rate.
func blastCmd(args []string) {
	fs := flag.NewFlagSet("blast", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7420", "serve instance's TCP ingest address")
		wlName    = fs.String("workload", "gcm", "workload supplying the generators (must match the served schema)")
		queries   = fs.Int("queries", 2, "query count (schema selection only)")
		tasks     = fs.Int("tasks", 1, "connections per stream (<= the server's -tasks)")
		rows      = fs.Int64("rows", 0, "stop after this many rows in total (0 = run for -for)")
		runFor    = fs.Duration("for", 2*time.Second, "wall-clock duration when -rows is 0")
		blockrows = fs.Int("blockrows", 4096, "rows per frame")
		report    = fs.String("report", "", "after blasting, fetch this serve /report URL and print it")
	)
	fs.Parse(args)

	w, err := workload.Open(*wlName, workload.Options{
		Queries: *queries,
		Window:  engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second},
		Rate:    1e6,
	})
	if err != nil {
		fail(err)
	}
	res, err := runtime.Blast(runtime.BlastConfig{
		Addr:      *addr,
		Workload:  w,
		Tasks:     *tasks,
		Rows:      *rows,
		Duration:  *runFor,
		BlockRows: *blockrows,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("blast        %d rows in %v (%.2f Mtuples/s accepted)\n",
		res.Rows, res.Elapsed.Round(time.Millisecond), res.MtuplesPerSec)

	if *report != "" {
		// Give the serve loop a moment to drain what TCP already buffered.
		time.Sleep(300 * time.Millisecond)
		resp, err := http.Get(*report)
		if err != nil {
			fail(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fail(err)
		}
		fmt.Printf("report       %s\n", strings.TrimSpace(string(body)))
	}
}

// elasticCmd runs the flash-crowd workload against the elastic
// autoscaler and narrates the episode: every join/drain decision from
// the trace, the nodes-versus-time strip, and the SLO-violation
// account. -autoscale=false runs the same crowd against the frozen
// seed cluster so the two invocations bracket what elasticity buys.
func elasticCmd(args []string) {
	fs := flag.NewFlagSet("elastic", flag.ExitOnError)
	var cf cliflags.Common
	var (
		wlName    = fs.String("workload", "flash", "workload: "+strings.Join(workload.Names(), ", "))
		queries   = fs.Int("queries", 4, "query count")
		nodes     = fs.Int("nodes", 4, "seed cluster nodes")
		groups    = fs.Int("groups", 32, "key groups")
		rate      = fs.Float64("rate", 10000, "calm-phase offered rate, tuples/s (the workload's schedule scales it)")
		duration  = fs.Duration("duration", 60*vtime.Second, "virtual run time")
		nic       = fs.Float64("nic", 1<<20, "per-node NIC bandwidth, bytes/s (sized so the flash saturates the seed cluster)")
		autoscale = fs.Bool("autoscale", true, "run the elastic control loop (false = frozen seed cluster baseline)")
		asMax     = fs.Int("autoscale-max", 0, "node ceiling the autoscaler may grow to (0 = nodes+4)")
		asHigh    = fs.Float64("autoscale-high", 0.05, "high-water backpressure fraction that votes scale-out")
		asLow     = fs.Float64("autoscale-low", 0.01, "low-water backpressure fraction that votes scale-in")
		asStep    = fs.Int("autoscale-step", 2, "max nodes joined or drained per decision")
		asPoll    = fs.Duration("autoscale-poll", 200*vtime.Millisecond, "virtual interval between autoscaler polls")
		events    = fs.Int("events", 0, "elastic trace events to print (0 = all)")
	)
	cf.Register(fs)
	cf.RegisterSeed(fs)
	fs.Parse(args)
	if err := cf.Validate(); err != nil {
		fail(err)
	}

	w, err := workload.Open(*wlName, workload.Options{
		Queries: *queries,
		Rate:    *rate,
	})
	if err != nil {
		fail(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = *nodes
	engCfg.NumPartitions = 2 * *nodes
	engCfg.NumGroups = *groups
	engCfg.SourceTasks = 2 // keep high-ID nodes drainable
	engCfg.ExactWindows = false
	engCfg.NodeConfig.NICBytesPerSec = *nic
	cf.Apply(&engCfg)

	coreCfg := core.DefaultConfig()
	coreCfg.TriggerInterval = 8 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 200e6}
	coreCfg.Obs = obs.New()
	pol := elastic.Config{
		MinNodes:      *nodes,
		MaxNodes:      *asMax,
		HighWater:     *asHigh,
		LowWater:      *asLow,
		UpPolls:       2,
		DownPolls:     3,
		CooldownPolls: 3,
		MaxStep:       *asStep,
	}
	if pol.MaxNodes <= 0 {
		pol.MaxNodes = *nodes + 4
	}
	if *autoscale {
		coreCfg.Elastic = &core.ElasticConfig{Policy: pol, PollInterval: *asPoll}
	}

	sys, err := core.New(engCfg, w.Streams, w.Queries, coreCfg)
	if err != nil {
		fail(err)
	}
	eng := sys.Engine()
	w.ApplyRatesAt(eng, eng.Clock(), 1)

	// Drive in half-second steps, re-applying the workload's rate
	// schedule and accounting virtual seconds spent above the policy's
	// high-water mark (the SLO-forfeit operating region).
	const sample = vtime.Second / 2
	horizon := eng.Clock().Add(vtime.Duration(*duration))
	var nodesSeries []int
	var violationSec float64
	peak := eng.LiveNodes()
	maxQ := eng.Network().Config().MaxQueueBytes
	for eng.Clock() < horizon {
		w.ApplyRatesAt(eng, eng.Clock(), 1)
		if err := sys.Run(sample); err != nil {
			fail(err)
		}
		live := eng.LiveNodes()
		if live > peak {
			peak = live
		}
		if len(nodesSeries) == 0 || eng.Clock().Sub(vtime.Time(0))%vtime.Second < sample {
			nodesSeries = append(nodesSeries, live)
		}
		pressure := eng.Network().QueuePressure()
		if maxQ > 0 && live > 0 {
			if q := eng.InboxBytes() / (float64(live) * maxQ); q > pressure {
				pressure = q
			}
		}
		if pressure > pol.HighWater {
			violationSec += sample.Seconds()
		}
	}

	snap := sys.Snapshot()
	mode := "autoscaled"
	if !*autoscale {
		mode = "frozen (no autoscaler)"
	}
	fmt.Printf("workload     %s (%d queries), %v virtual, %s\n", w.Name, len(w.Queries), *duration, mode)
	fmt.Printf("cluster      %d seed nodes, peak %d, final %d (%d joins, %d drains)\n",
		*nodes, peak, snap.LiveNodes, snap.ElasticJoins, snap.ElasticDrains)
	fmt.Printf("SLO          %.1f virtual seconds above the %.2f high-water mark\n", violationSec, pol.HighWater)
	fmt.Printf("integrity    %.1f MB lost (must be 0.0 across drains)\n", snap.LostBytes/1e6)

	var trace []obs.Event
	for _, ev := range sys.Trace() {
		switch ev.Kind {
		case obs.EvElasticDecision, obs.EvElasticJoin, obs.EvElasticDrainStart, obs.EvElasticDrainDone:
			trace = append(trace, ev)
		}
	}
	fmt.Printf("\n--- elastic trace (%d events) ---\n", len(trace))
	if *events > 0 && len(trace) > *events {
		fmt.Printf("... %d earlier events elided (-events 0 for all) ...\n", len(trace)-*events)
		trace = trace[len(trace)-*events:]
	}
	for _, ev := range trace {
		fmt.Println(ev)
	}

	fmt.Printf("\nnodes vs time (one digit per virtual second):\n  ")
	for _, n := range nodesSeries {
		fmt.Printf("%d", n%10)
	}
	fmt.Println()
}

// faultsCmd runs the crash-recovery experiment: seeded scripted node
// losses against a running SASPAR system, fanned over the run-matrix
// pool, reporting per-seed time-to-recover and the sustained-throughput
// dip while degraded.
func faultsCmd(args []string) {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	var cf cliflags.Common
	var (
		seeds = fs.Int("seeds", 3, "independent crash scenarios to run")
		full  = fs.Bool("full", false, "run at paper scale (slow)")
		nodes = fs.Int("nodes", 0, "override cluster nodes (0 = scale default)")
		rate  = fs.Float64("rate", 0, "override offered rate, tuples/s (0 = scale default)")
	)
	cf.Register(fs)
	cf.RegisterWorkers(fs)
	fs.Parse(args)
	if err := cf.Validate(); err != nil {
		fail(err)
	}

	sc := bench.Quick()
	if *full {
		sc = bench.Paper()
	}
	sc.Workers = cf.Workers
	sc.Shards = cf.Shards
	sc.Batch = cf.Batch
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	if *rate > 0 {
		sc.Rate = *rate
	}

	rows, err := bench.Recovery(sc, *seeds)
	if err != nil {
		fail(err)
	}
	bench.PrintRecovery(os.Stdout, rows)

	var recover, dip float64
	for _, r := range rows {
		recover += r.RecoverMs
		dip += r.DipPct
	}
	n := float64(len(rows))
	fmt.Printf("\ntime-to-recover        %.0f ms mean over %d scenarios\n", recover/n, len(rows))
	fmt.Printf("sustained-throughput   dipped to %.0f%% of pre-fault mean while degraded\n", dip/n)
}

// checkpointsCmd runs one SASPAR system with the checkpoint
// coordinator armed and dumps the snapshot store afterwards. With
// -crash it also scripts a mid-run node loss so the listing shows the
// restore the recovery loop performed.
func checkpointsCmd(args []string) {
	fs := flag.NewFlagSet("checkpoints", flag.ExitOnError)
	var cf cliflags.Common
	var (
		wlName      = fs.String("workload", "gcm", "workload: "+strings.Join(workload.Names(), ", "))
		queries     = fs.Int("queries", 2, "query count")
		nodes       = fs.Int("nodes", 4, "cluster nodes")
		groups      = fs.Int("groups", 32, "key groups")
		rate        = fs.Float64("rate", 40e6, "offered rate, tuples/s (per primary stream)")
		duration    = fs.Duration("duration", 30*vtime.Second, "virtual run time")
		interval    = fs.Duration("interval", 2*vtime.Second, "checkpoint interval (virtual)")
		retention   = fs.Int("retention", 0, "checkpoints to retain (0 = default)")
		incremental = fs.Bool("incremental", false, "store per-key-group deltas instead of full snapshots")
		crash       = fs.Bool("crash", false, "script a node crash mid-run and show the restore")
		dir         = fs.String("dir", "", "persist snapshots to this directory (default: in-memory)")
	)
	cf.Register(fs)
	cf.RegisterSeed(fs)
	fs.Parse(args)
	if err := cf.Validate(); err != nil {
		fail(err)
	}

	// A zero interval means "checkpointing off" to core.Config.Validate,
	// which would leave the coordinator nil and this command pointless.
	if *interval <= 0 {
		fail(fmt.Errorf("checkpoints: -interval must be positive, got %v", *interval))
	}

	w, err := workload.Open(*wlName, workload.Options{
		Queries: *queries,
		Window:  engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second},
		Rate:    *rate,
	})
	if err != nil {
		fail(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = *nodes
	engCfg.NumPartitions = 2 * *nodes
	engCfg.NumGroups = *groups
	engCfg.SourceTasks = 2
	engCfg.ExactWindows = false
	engCfg.TupleWeight = 1000
	cf.Apply(&engCfg)

	coreCfg := core.DefaultConfig()
	coreCfg.TriggerInterval = 8 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 200e6}
	coreCfg.Obs = obs.New()
	coreCfg.Checkpoint = checkpoint.Config{
		Interval:    *interval,
		Retention:   *retention,
		Incremental: *incremental,
	}
	if *dir != "" {
		st, err := checkpoint.NewFileStore(*dir)
		if err != nil {
			fail(err)
		}
		coreCfg.Checkpoint.Store = st
	}
	if *crash {
		scenario, err := faults.Generate(faults.Config{
			Nodes: *nodes, Seed: cf.Seed,
			Crashes: 1,
			Start:   *duration / 2, Span: 2 * vtime.Second,
		})
		if err != nil {
			fail(err)
		}
		coreCfg.FaultScenario = scenario
	}

	sys, err := core.New(engCfg, w.Streams, w.Queries, coreCfg)
	if err != nil {
		fail(err)
	}
	w.ApplyRates(sys.Engine(), 1)
	if err := sys.Run(*duration); err != nil {
		fail(err)
	}
	if *crash {
		// Give the recovery loop room to finish the evacuation+restore.
		deadline := sys.Engine().Clock().Add(5 * *duration)
		for sys.Engine().Clock() < deadline {
			if snap := sys.Snapshot(); snap.Recoveries > 0 && !snap.RecoveryPending {
				break
			}
			sys.Run(2 * vtime.Second)
		}
	}

	ck := sys.Checkpointer()
	snap := sys.Snapshot()
	fmt.Printf("workload     %s (%d queries), %v virtual on %d nodes\n", w.Name, len(w.Queries), *duration, *nodes)
	fmt.Printf("checkpoints  %d completed, %.1f MB stored (interval %v, retention shown below)\n",
		snap.Checkpoints, snap.CheckpointBytes/1e6, ck.Interval())
	if *crash {
		// The restore source comes from the trace: LatestBefore picks
		// the newest checkpoint completed before detection, which is
		// usually older than LastID — checkpoints keep completing while
		// recovery runs.
		src := ""
		for _, ev := range sys.Trace() {
			if ev.Kind != obs.EvCheckpointRestore {
				continue
			}
			for _, kv := range ev.Attrs {
				if kv.K == "checkpoint" {
					src = kv.V
				}
			}
		}
		if src == "" {
			fmt.Printf("crash        lost %.1f MB gross, no checkpoint restore performed\n",
				snap.LostBytes/1e6)
		} else {
			fmt.Printf("crash        lost %.1f MB gross, restored %.1f MB from checkpoint %s\n",
				snap.LostBytes/1e6, snap.RestoredBytes/1e6, src)
		}
	}

	ids, err := ck.Store().List()
	if err != nil {
		fail(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nid\tkind\tbase\tbarrier\taligned in\tgroups\tMB")
	for _, id := range ids {
		s, err := ck.Store().Get(id)
		if err != nil {
			fail(err)
		}
		kind, base := "full", "-"
		if !s.Full {
			kind, base = "delta", fmt.Sprintf("%d", s.BaseID)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%v\t%v\t%d\t%.1f\n",
			s.ID, kind, base, s.Barrier,
			s.CompletedAt.Sub(s.Barrier).Round(vtime.Millisecond),
			len(s.Groups), s.Bytes/1e6)
	}
	tw.Flush()
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var cf cliflags.Common
	var (
		wlName     = fs.String("workload", "tpch", "workload: "+strings.Join(workload.Names(), ", "))
		sutName    = fs.String("sut", "SASPAR+Flink", "system under test, e.g. Flink, SASPAR+AJoin")
		queries    = fs.Int("queries", 8, "query count (tpch: <=14, gcm: <=2)")
		nodes      = fs.Int("nodes", 8, "cluster nodes")
		partitions = fs.Int("partitions", 32, "partition slots")
		groups     = fs.Int("groups", 128, "key groups")
		rate       = fs.Float64("rate", 40e6, "offered rate, tuples/s (per primary stream)")
		warmup     = fs.Duration("warmup", 20*vtime.Second, "virtual warm-up")
		measure    = fs.Duration("measure", 20*vtime.Second, "virtual measurement window")
		drift      = fs.Duration("drift", 0, "hot-key drift period (0 = stationary)")
		reps       = fs.Int("reps", 1, "repetitions to average")
		greedyAt   = fs.Int("greedy-threshold", 0, "groups×partitions size at which the optimizer switches to the one-pass greedy tier (0 = default, negative = never)")
	)
	cf.Register(fs)
	cf.RegisterSeed(fs)
	fs.Parse(args)
	if err := cf.Validate(); err != nil {
		fail(err)
	}

	sut, err := parseSUT(*sutName)
	if err != nil {
		fail(err)
	}
	w, err := workload.Open(*wlName, workload.Options{
		Queries: *queries,
		Window:  engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second},
		Rate:    *rate,
		Drift:   *drift,
	})
	if err != nil {
		fail(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = *nodes
	engCfg.NumPartitions = *partitions
	engCfg.NumGroups = *groups
	engCfg.SourceTasks = *nodes
	engCfg.TupleWeight = 1000
	cf.Apply(&engCfg)

	coreCfg := core.DefaultConfig()
	coreCfg.TriggerInterval = 8 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 500e6, GreedyThreshold: *greedyAt}

	res, err := driver.Run(driver.Config{
		SUT:         sut,
		Workload:    w,
		Engine:      engCfg,
		Core:        coreCfg,
		Warmup:      *warmup,
		Measure:     *measure,
		Repetitions: *reps,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload        %s (%d queries)\n", w.Name, len(w.Queries))
	fmt.Printf("SUT             %s\n", res.SUT)
	fmt.Printf("throughput      %s tuples/s (std %s)\n", vtime.FormatRate(res.Throughput), vtime.FormatRate(res.ThroughputStd))
	fmt.Printf("latency         %v avg, %v std\n", res.AvgLatency.Round(vtime.Millisecond), res.LatencyStd.Round(vtime.Millisecond))
	fmt.Printf("wire traffic    %.1f MB over the measurement window (utilization %.0f%%)\n", res.BytesNet/1e6, res.NetUtil*100)
	fmt.Printf("reshuffled      %.0f tuples sent back to sources\n", res.Reshuffled)
	fmt.Printf("JIT             %.0f compilations, %v\n", res.JITCompiles, res.JITTime)
	fmt.Printf("optimizer       %d triggers, %d plans applied\n", res.Triggers, res.Applied)
}

// inspectCmd runs one SASPAR system with the telemetry registry
// attached and dumps what the control plane did: the report snapshot,
// the structured event trace, and the Prometheus-format metric dump.
func inspectCmd(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	var cf cliflags.Common
	var (
		wlName   = fs.String("workload", "ajoin", "workload: "+strings.Join(workload.Names(), ", "))
		queries  = fs.Int("queries", 8, "query count")
		nodes    = fs.Int("nodes", 4, "cluster nodes")
		groups   = fs.Int("groups", 32, "key groups")
		rate     = fs.Float64("rate", 4e6, "offered rate, tuples/s (per primary stream)")
		duration = fs.Duration("duration", 20*vtime.Second, "virtual run time")
		drift    = fs.Duration("drift", 8*vtime.Second, "hot-key drift period (0 = stationary)")
		events   = fs.Int("events", 40, "trace events to print (0 = all)")
	)
	cf.Register(fs)
	cf.RegisterSeed(fs)
	fs.Parse(args)
	if err := cf.Validate(); err != nil {
		fail(err)
	}

	w, err := workload.Open(*wlName, workload.Options{
		Queries: *queries,
		Window:  engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second},
		Rate:    *rate,
		Drift:   *drift,
	})
	if err != nil {
		fail(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = *nodes
	engCfg.NumPartitions = 2 * *nodes
	engCfg.NumGroups = *groups
	engCfg.SourceTasks = *nodes
	cf.Apply(&engCfg)

	coreCfg := core.DefaultConfig()
	coreCfg.TriggerInterval = 4 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 200e6}
	coreCfg.Obs = obs.New()

	sys, err := core.New(engCfg, w.Streams, w.Queries, coreCfg)
	if err != nil {
		fail(err)
	}
	w.ApplyRates(sys.Engine(), 1)

	m := sys.Engine().Metrics()
	m.StartMeasurement(0)
	if err := sys.Run(*duration); err != nil {
		fail(err)
	}
	m.StopMeasurement(sys.Engine().Clock())

	snap := sys.Snapshot()
	fmt.Printf("workload     %s (%d queries), %v virtual on %d nodes\n", w.Name, len(w.Queries), *duration, *nodes)
	fmt.Printf("throughput   %s tuples/s   latency %v   sharing ratio %.2f\n",
		vtime.FormatRate(snap.Throughput), snap.AvgLatency.Round(vtime.Millisecond), snap.SharingRatio)
	fmt.Printf("optimizer    %d triggers (%d by drift), %d applied, %d skipped (%d gain, %d movement)\n",
		snap.Triggers, snap.DriftTriggers, snap.Applied, snap.SkippedPlans, snap.SkippedByGain, snap.SkippedByMove)
	fmt.Printf("solver       %d MIP solves, %d branch-and-bound nodes\n", snap.Solves, snap.NodesExplored)
	fmt.Printf("engine       %.0f tuples reshuffled, %d JIT compilations, wire %.1f MB\n",
		snap.Reshuffled, snap.JITCompiles, snap.Net.BytesNet/1e6)

	trace := sys.Trace()
	fmt.Printf("\n--- event trace (%d events) ---\n", len(trace))
	if *events > 0 && len(trace) > *events {
		fmt.Printf("... %d earlier events elided (-events 0 for all) ...\n", len(trace)-*events)
		trace = trace[len(trace)-*events:]
	}
	for _, e := range trace {
		fmt.Println(e)
	}

	fmt.Printf("\n--- metrics snapshot (Prometheus text format) ---\n")
	if err := coreCfg.Obs.WritePrometheus(os.Stdout); err != nil {
		fail(err)
	}
}

func parseSUT(s string) (spe.SUT, error) {
	for _, sut := range spe.AllSUTs() {
		if strings.EqualFold(sut.Name(), s) {
			return sut, nil
		}
	}
	return spe.SUT{}, fmt.Errorf("unknown SUT %q (try Flink, AJoin, Prompt, SASPAR+Flink, ...)", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sasparctl:", err)
	os.Exit(1)
}
