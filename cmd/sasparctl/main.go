// Command sasparctl runs one workload against one system under test on
// the simulated cluster and prints the benchmark metrics — the
// single-cell version of cmd/figures for interactive exploration.
//
// Usage:
//
//	sasparctl -workload tpch|ajoin|gcm -sut SASPAR+Flink|Flink|AJoin|...
//	          [-queries N] [-nodes N] [-partitions N] [-groups N]
//	          [-rate R] [-warmup D] [-measure D] [-drift D] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"saspar/internal/ajoinwl"
	"saspar/internal/core"
	"saspar/internal/driver"
	"saspar/internal/engine"
	"saspar/internal/gcm"
	"saspar/internal/optimizer"
	"saspar/internal/spe"
	"saspar/internal/tpch"
	"saspar/internal/vtime"
	"saspar/internal/workload"
)

func main() {
	var (
		wlName     = flag.String("workload", "tpch", "workload: tpch, ajoin, gcm")
		sutName    = flag.String("sut", "SASPAR+Flink", "system under test, e.g. Flink, SASPAR+AJoin")
		queries    = flag.Int("queries", 8, "query count (tpch: <=14, gcm: <=2)")
		nodes      = flag.Int("nodes", 8, "cluster nodes")
		partitions = flag.Int("partitions", 32, "partition slots")
		groups     = flag.Int("groups", 128, "key groups")
		rate       = flag.Float64("rate", 40e6, "offered rate, tuples/s (per primary stream)")
		warmup     = flag.Duration("warmup", 20*vtime.Second, "virtual warm-up")
		measure    = flag.Duration("measure", 20*vtime.Second, "virtual measurement window")
		drift      = flag.Duration("drift", 0, "hot-key drift period (0 = stationary)")
		reps       = flag.Int("reps", 1, "repetitions to average")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	sut, err := parseSUT(*sutName)
	if err != nil {
		fail(err)
	}
	win := engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second}
	var w *workload.Workload
	switch *wlName {
	case "tpch":
		cfg := tpch.DefaultConfig()
		cfg.Queries = tpch.QuerySubset(*queries)
		cfg.Window = win
		cfg.LineitemRate = *rate
		cfg.DriftPeriod = *drift
		w, err = tpch.New(cfg)
	case "ajoin":
		cfg := ajoinwl.DefaultConfig()
		cfg.NumQueries = *queries
		cfg.Window = win
		cfg.RatePerStream = *rate / 4
		cfg.DriftPeriod = *drift
		w, err = ajoinwl.New(cfg)
	case "gcm":
		cfg := gcm.DefaultConfig()
		cfg.NumQueries = *queries
		cfg.Window = win
		cfg.Rate = *rate
		w, err = gcm.New(cfg)
	default:
		err = fmt.Errorf("unknown workload %q", *wlName)
	}
	if err != nil {
		fail(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = *nodes
	engCfg.NumPartitions = *partitions
	engCfg.NumGroups = *groups
	engCfg.SourceTasks = *nodes
	engCfg.TupleWeight = 1000
	engCfg.Seed = *seed

	coreCfg := core.DefaultConfig()
	coreCfg.TriggerInterval = 8 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 500e6}

	res, err := driver.Run(driver.Config{
		SUT:         sut,
		Workload:    w,
		Engine:      engCfg,
		Core:        coreCfg,
		Warmup:      *warmup,
		Measure:     *measure,
		Repetitions: *reps,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload        %s (%d queries)\n", w.Name, len(w.Queries))
	fmt.Printf("SUT             %s\n", res.SUT)
	fmt.Printf("throughput      %s tuples/s (std %s)\n", vtime.FormatRate(res.Throughput), vtime.FormatRate(res.ThroughputStd))
	fmt.Printf("latency         %v avg, %v std\n", res.AvgLatency.Round(vtime.Millisecond), res.LatencyStd.Round(vtime.Millisecond))
	fmt.Printf("wire traffic    %.1f MB over the measurement window (utilization %.0f%%)\n", res.BytesNet/1e6, res.NetUtil*100)
	fmt.Printf("reshuffled      %.0f tuples sent back to sources\n", res.Reshuffled)
	fmt.Printf("JIT             %.0f compilations, %v\n", res.JITCompiles, res.JITTime)
	fmt.Printf("optimizer       %d triggers, %d plans applied\n", res.Triggers, res.Applied)
}

func parseSUT(s string) (spe.SUT, error) {
	for _, sut := range spe.AllSUTs() {
		if strings.EqualFold(sut.Name(), s) {
			return sut, nil
		}
	}
	return spe.SUT{}, fmt.Errorf("unknown SUT %q (try Flink, AJoin, Prompt, SASPAR+Flink, ...)", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sasparctl:", err)
	os.Exit(1)
}
