// Command figures regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Usage:
//
//	figures [-full] [-fig N] [-workers N] [-shards N] [-batch N] [-bench-json FILE]
//
// Without flags it runs the quick scale (seconds of wall time per
// figure); -full approaches the paper's dimensions. -fig selects one
// figure ("6", "7", "8", "9", "10", "11", "12a", "12b", "13", "ml",
// "recovery", "ckpt-recovery", "elastic", "migration" — the last four
// are the crash-recovery, checkpointed-recovery, elastic flash-crowd,
// and staged-versus-pause migration experiments, which are not part of
// the paper's figure set and therefore not included in the default
// run).
// -workers bounds the run-matrix pool the harnesses fan cells over
// (0 = SASPAR_PARALLEL env, then GOMAXPROCS; 1 = sequential); output
// is identical at any worker count. -shards additionally parallelizes
// each cell's engine ticks (engine.Config.Shards); the shared token
// budget in internal/parallel keeps workers × shards from
// oversubscribing the host, and output is byte-identical at any shard
// count too. -batch sets the engine's generation block size
// (engine.Config.BatchSize, default 64; 1 = tuple-at-a-time): a pure
// execution knob of the columnar data plane, byte-identical output at
// any value. -bench-json measures a performance
// snapshot — engine tick cost and sequential-vs-parallel RunAll wall
// clock — and writes it to FILE instead of running figures.
// -bench-compare re-measures only the engine_step entries (best of
// three) and fails if any mode regressed more than -bench-tolerance
// percent against the committed baseline FILE; scripts/bench_compare.sh
// is the CI entry point.
package main

import (
	"flag"
	"fmt"
	"os"

	"saspar/internal/bench"
	"saspar/internal/cliflags"
)

func main() {
	var cf cliflags.Common
	full := flag.Bool("full", false, "run at paper scale (slow)")
	fig := flag.String("fig", "", "run a single figure (6,7,8,9,10,11,12a,12b,13,ml,recovery,ckpt-recovery,greedy,elastic,migration)")
	benchJSON := flag.String("bench-json", "", "write a performance snapshot to this file and exit")
	benchCompare := flag.String("bench-compare", "", "compare current engine_step cost against this committed BENCH_*.json and exit non-zero on regression")
	benchTol := flag.Float64("bench-tolerance", 25, "ns/op regression tolerance for -bench-compare, percent")
	cf.Register(flag.CommandLine)
	cf.RegisterWorkers(flag.CommandLine)
	flag.Parse()
	if err := cf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	sc := bench.Quick()
	if *full {
		sc = bench.Paper()
	}
	sc.Workers = cf.Workers
	sc.Shards = cf.Shards
	sc.Batch = cf.Batch

	if *benchCompare != "" {
		if err := compareBench(sc, *benchCompare, *benchTol); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		if err := emitBenchJSON(sc, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(sc, *fig); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func emitBenchJSON(sc bench.Scale, path string) error {
	rep, err := bench.CollectBenchReport(sc)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func compareBench(sc bench.Scale, baselinePath string, tolPct float64) error {
	f, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	base, err := bench.ReadBenchReport(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	cur, err := bench.CollectStepReport(sc, 3)
	if err != nil {
		return err
	}
	fmt.Printf("baseline %s (tolerance %.0f%%)\n", baselinePath, tolPct)
	return bench.CompareEngineStep(os.Stdout, cur, base, tolPct)
}

func run(sc bench.Scale, fig string) error {
	w := os.Stdout
	switch fig {
	case "":
		return bench.RunAll(sc, w)
	case "6":
		cells, err := bench.Fig6(sc)
		if err != nil {
			return err
		}
		bench.PrintFig6(w, cells)
	case "7":
		cells, err := bench.Fig6(sc)
		if err != nil {
			return err
		}
		bench.PrintFig7(w, cells)
	case "8":
		rows, err := bench.Fig8(sc)
		if err != nil {
			return err
		}
		bench.PrintFig8a(w, rows)
		fmt.Fprintln(w)
		bench.PrintFig8b(w, rows)
	case "9":
		rows, err := bench.Fig9(sc)
		if err != nil {
			return err
		}
		bench.PrintFig9(w, rows)
	case "10":
		rows, err := bench.Fig10(sc)
		if err != nil {
			return err
		}
		bench.PrintFig10(w, rows)
	case "11":
		rows, err := bench.Fig11(sc)
		if err != nil {
			return err
		}
		bench.PrintFig11(w, rows)
	case "12a":
		rows, err := bench.Fig12a(sc)
		if err != nil {
			return err
		}
		bench.PrintFig12a(w, rows)
	case "12b":
		rows, err := bench.Fig12b(sc)
		if err != nil {
			return err
		}
		bench.PrintFig12b(w, rows)
	case "13":
		rows, err := bench.Fig13(sc)
		if err != nil {
			return err
		}
		bench.PrintFig13(w, rows)
	case "greedy":
		rows, err := bench.Greedy(sc)
		if err != nil {
			return err
		}
		bench.PrintGreedy(w, rows)
	case "ml":
		rows, err := bench.MLAccuracy(sc)
		if err != nil {
			return err
		}
		bench.PrintML(w, rows)
	case "recovery":
		rows, err := bench.Recovery(sc, 3)
		if err != nil {
			return err
		}
		bench.PrintRecovery(w, rows)
	case "ckpt-recovery":
		rows, err := bench.CkptRecovery(sc, 3)
		if err != nil {
			return err
		}
		bench.PrintCkptRecovery(w, rows)
	case "elastic":
		rows, err := bench.Elastic(sc)
		if err != nil {
			return err
		}
		bench.PrintElastic(w, rows)
	case "migration":
		rows, err := bench.Migration(sc)
		if err != nil {
			return err
		}
		bench.PrintMigration(w, rows)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
