// Package saspar's root benchmark file wires one testing.B benchmark to
// every table and figure of the paper's evaluation (see DESIGN.md §4
// for the experiment index). Each benchmark runs its figure harness at
// the quick scale and reports the figure's headline quantity as custom
// benchmark metrics, so `go test -bench=. -benchmem` regenerates the
// whole evaluation. `go run ./cmd/figures -full` runs the paper-scale
// versions.
package saspar

import (
	"fmt"
	"testing"

	"saspar/internal/bench"
	"saspar/internal/optimizer"
)

func benchScale() bench.Scale { return bench.Quick() }

// BenchmarkFig06Throughput — Fig. 6: overall throughput of the six SUTs
// across 1..14 TPC-H queries.
func BenchmarkFig06Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Queries == 14 || c.Queries == 1 {
				b.ReportMetric(c.ThroughputMTps, fmt.Sprintf("Mtps_%s_%dq", c.SUT, c.Queries))
			}
		}
	}
}

// BenchmarkFig07Latency — Fig. 7: average event-time latency on the
// same grid.
func BenchmarkFig07Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Queries == 14 {
				b.ReportMetric(c.LatencyMs, fmt.Sprintf("ms_%s_%dq", c.SUT, c.Queries))
			}
		}
	}
}

// BenchmarkFig08aOptTime — Fig. 8a: optimization time, MIP vs
// MIP+Heuristics, across the size ladder.
func BenchmarkFig08aOptTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.MIPMillis, "ms_MIP_"+sizeLabel(last.Size))
		b.ReportMetric(last.HeurMillis, "ms_Heur_"+sizeLabel(last.Size))
	}
}

// sizeLabel renders an OptSize without whitespace (benchmark metric
// units must be single tokens).
func sizeLabel(s bench.OptSize) string {
	return fmt.Sprintf("%dq-%dp-%dg", s.Queries, s.Partitions, s.Groups)
}

// BenchmarkFig08bAccuracy — Fig. 8b: heuristic accuracy vs the MIP
// objective.
func BenchmarkFig08bAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Accuracy, "acc_"+sizeLabel(r.Size))
		}
	}
}

// BenchmarkFig09Reshuffle — Fig. 9: tuples sent back to the source
// operators under drift.
func BenchmarkFig09Reshuffle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, r := range rows {
			total += r.ReshuffledK
		}
		b.ReportMetric(total, "Ktuples_total")
	}
}

// BenchmarkFig10AJoinWorkload — Fig. 10: throughput on the AJoin
// workload up to hundreds of join queries.
func BenchmarkFig10AJoinWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Queries == 100 {
				b.ReportMetric(r.ThroughputMTps, fmt.Sprintf("Mtps_%s_%dq", r.SUT, r.Queries))
			}
		}
	}
}

// BenchmarkFig11TriggerInterval — Fig. 11: SASPAR+Flink throughput vs
// optimizer trigger interval.
func BenchmarkFig11TriggerInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Queries == 20 {
				b.ReportMetric(r.ThroughputMTps, fmt.Sprintf("Mtps_%dmin", r.IntervalUnits))
			}
		}
	}
}

// BenchmarkFig12aHeuristics — Fig. 12a: heuristic impact breakdown.
func BenchmarkFig12aHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12a(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		for h, pct := range last.ImpactPct {
			b.ReportMetric(pct, fmt.Sprintf("pct_%s_%dq", h, last.Queries))
		}
	}
}

// BenchmarkFig12bJITOverhead — Fig. 12b: JIT compilation overhead on
// event-time latency.
func BenchmarkFig12bJITOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12b(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Queries == 100 {
				b.ReportMetric(r.OverheadPct, "pct_"+r.SUT)
			}
		}
	}
}

// BenchmarkFig13GCM — Fig. 13: throughput on the GCM workload.
func BenchmarkFig13GCM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Queries == 2 {
				b.ReportMetric(r.ThroughputMTps, "Mtps_"+r.SUT)
			}
		}
	}
}

// BenchmarkMLAccuracy — §V-C microbenchmark: SharedWith prediction
// error vs accumulated splits ("below 10% after 250 splits").
func BenchmarkMLAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.MLAccuracy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ErrorPct, fmt.Sprintf("errpct_%dsplits", r.Splits))
		}
	}
}

// BenchmarkAblationBounds — DESIGN.md ablation: MIP solve time with the
// default combinatorial bounds versus with an LP-relaxation root bound
// available (small instance where the dense simplex applies).
func BenchmarkAblationBounds(b *testing.B) {
	rows, err := bench.AblationBounds()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.Run(r.Name, func(b *testing.B) {
			b.ReportMetric(r.Millis, "ms")
			b.ReportMetric(r.Value, "bound")
		})
	}
}

// BenchmarkAblationDedup — DESIGN.md ablation: shared partitioner
// single-copy dedup on vs off (bytes moved for identical queries).
func BenchmarkAblationDedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationDedup(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SharedMB, "MB_shared")
		b.ReportMetric(r.UnsharedMB, "MB_unshared")
	}
}

// BenchmarkAblationModelRepair — DESIGN.md ablation: the optimizer with
// and without the unshareable-traffic repair term.
func BenchmarkAblationModelRepair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationModelRepair()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RepairedObjective, "obj_repaired")
		b.ReportMetric(r.LiteralObjective, "obj_literal_eq4")
	}
}

// BenchmarkAblationMLStats — DESIGN.md ablation: optimizer fed exact
// overlap statistics vs random-forest predictions.
func BenchmarkAblationMLStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationMLStats(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ExactObjective, "obj_exact_stats")
		b.ReportMetric(r.MLObjective, "obj_ml_stats")
	}
}

// BenchmarkOptimizerSolve exercises the raw solver on a mid-size
// instance (µ-benchmark for the B&B hot path).
func BenchmarkOptimizerSolve(b *testing.B) {
	req := bench.SynthRequest(bench.OptSize{Queries: 6, Partitions: 8, Groups: 32}, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.Optimize(req, optimizer.Options{MaxNodes: 20000, Timeout: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
}
