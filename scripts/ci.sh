#!/bin/sh
# Tier-1 verification: what every change must pass before merging.
#
#   build + vet        compile the whole module and run static checks
#   go test ./...      unit, integration, property and shape tests
#   go test -race ...  the two packages that spawn goroutines — the
#                      run-matrix pool (internal/parallel) and the
#                      optimizer's parallel component solver
#                      (internal/optimizer) — under the race detector
#
# SASPAR_PARALLEL caps the harness worker pool; keep CI deterministic
# but let the bench tests use the machine.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/parallel/ ./internal/optimizer/

echo "CI OK"
