#!/bin/sh
# Tier-1 verification: what every change must pass before merging.
#
#   gofmt -l           the tree must be gofmt-clean
#   build + vet        compile the whole module and run static checks
#   go test ./...      unit, integration, property and shape tests
#   go test -race ...  the packages that spawn goroutines — the
#                      run-matrix pool (internal/parallel), the
#                      optimizer's parallel component solver
#                      (internal/optimizer) and the telemetry registry
#                      written to from harness workers (internal/obs) —
#                      under the race detector, plus the fault scheduler
#                      (internal/faults), the AQE controller
#                      (internal/aqe), the checkpoint coordinator
#                      (internal/checkpoint) whose recovery paths run
#                      inside pooled harness cells, and the sharded
#                      engine step (internal/engine, internal/core):
#                      their suites raise the parallel budget so the
#                      slot/router phases really run on goroutines
#                      (TestShardedChurnStress, the determinism grid)
#   go test -fuzz ...  short smoke over the native fuzz targets —
#                      keyspace subset remap/anchor math and mip model
#                      ingestion — seeded from testdata/fuzz corpora
#
# SASPAR_PARALLEL caps the harness worker pool; keep CI deterministic
# but let the bench tests use the machine.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/parallel/ ./internal/optimizer/ ./internal/obs/ ./internal/faults/ ./internal/aqe/ ./internal/checkpoint/ ./internal/engine/ ./internal/core/

echo "== go test -fuzz (smoke)"
go test -run '^$' -fuzz FuzzSubsetRemap -fuzztime 10s ./internal/keyspace/
go test -run '^$' -fuzz FuzzDecodeInstance -fuzztime 10s ./internal/mip/

echo "== bench compare (engine_step regression gate)"
scripts/bench_compare.sh

echo "CI OK"
