#!/bin/sh
# Tier-1 verification: what every change must pass before merging.
#
#   gofmt -l           the tree must be gofmt-clean
#   build + vet        compile the whole module and run static checks
#   go test ./...      unit, integration, property and shape tests
#   go test -race ...  the packages that spawn goroutines — the
#                      run-matrix pool (internal/parallel), the
#                      optimizer's parallel component solver
#                      (internal/optimizer) and the telemetry registry
#                      written to from harness workers (internal/obs) —
#                      under the race detector, plus the fault scheduler
#                      (internal/faults), the AQE controller
#                      (internal/aqe), the checkpoint coordinator
#                      (internal/checkpoint) whose recovery paths run
#                      inside pooled harness cells and whose delta
#                      chains staged migration pre-ships, the sharded
#                      engine step (internal/engine, internal/core):
#                      their suites raise the parallel budget so the
#                      slot/router phases really run on goroutines
#                      (TestShardedChurnStress, the determinism grid —
#                      including the migration-mode axis and the
#                      mid-stage crash matrix),
#                      the serving runtime (internal/runtime) whose
#                      SPSC ingest rings are exactly the kind of
#                      lock-free code the race detector exists for,
#                      and the elastic autoscaling policy
#                      (internal/elastic) whose decisions the pooled
#                      determinism grid replays under sharded execution
#   go test -fuzz ...  short smoke over the native fuzz targets —
#                      keyspace subset remap/anchor math, mip model
#                      ingestion, the SPSC ring against a model queue,
#                      the wire decoder against hostile frames, the
#                      greedy optimizer tier against the B&B optimum,
#                      the autoscaler policy's rate-limit/bounds
#                      safety properties, and the checkpoint delta
#                      chain's materialize/fixpoint invariants — seeded
#                      from testdata/fuzz corpora
#   serve smoke        boots sasparctl serve on loopback, blasts a
#                      fixed row budget through the binary ingest
#                      protocol, and asserts the /report saw every row
#
# SASPAR_PARALLEL caps the harness worker pool; keep CI deterministic
# but let the bench tests use the machine.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/parallel/ ./internal/optimizer/ ./internal/obs/ ./internal/faults/ ./internal/aqe/ ./internal/checkpoint/ ./internal/engine/ ./internal/core/ ./internal/runtime/ ./internal/elastic/

echo "== go test -fuzz (smoke)"
go test -run '^$' -fuzz FuzzSubsetRemap -fuzztime 10s ./internal/keyspace/
go test -run '^$' -fuzz FuzzDecodeInstance -fuzztime 10s ./internal/mip/
go test -run '^$' -fuzz FuzzRingModel -fuzztime 10s ./internal/runtime/
go test -run '^$' -fuzz FuzzWire -fuzztime 10s ./internal/runtime/
go test -run '^$' -fuzz FuzzGreedyVsBB -fuzztime 10s ./internal/optimizer/
go test -run '^$' -fuzz FuzzPolicyStep -fuzztime 10s ./internal/elastic/
go test -run '^$' -fuzz FuzzDeltaChain -fuzztime 10s ./internal/checkpoint/

echo "== serve smoke (loopback ingest)"
ctl=$(mktemp -t sasparctl.XXXXXX)
go build -o "$ctl" ./cmd/sasparctl
"$ctl" serve -addr 127.0.0.1:17420 -http 127.0.0.1:17421 &
serve_pid=$!
blast_out=""
for attempt in 1 2 3 4 5 6 7 8 9 10; do
    if blast_out=$("$ctl" blast -addr 127.0.0.1:17420 -rows 65536 \
        -report http://127.0.0.1:17421/report 2>/dev/null); then
        break
    fi
    blast_out=""
    sleep 1
done
kill -INT "$serve_pid" 2>/dev/null || true
wait "$serve_pid" || true
rm -f "$ctl"
echo "$blast_out"
if ! echo "$blast_out" | grep -q '"ingested_rows":65536'; then
    echo "serve smoke: report did not show 65536 ingested rows" >&2
    exit 1
fi

echo "== bench compare (engine_step regression gate)"
scripts/bench_compare.sh

echo "CI OK"
