#!/bin/sh
# Tier-1 verification: what every change must pass before merging.
#
#   gofmt -l           the tree must be gofmt-clean
#   build + vet        compile the whole module and run static checks
#   go test ./...      unit, integration, property and shape tests
#   go test -race ...  the packages that spawn goroutines — the
#                      run-matrix pool (internal/parallel), the
#                      optimizer's parallel component solver
#                      (internal/optimizer) and the telemetry registry
#                      written to from harness workers (internal/obs) —
#                      under the race detector, plus the fault scheduler
#                      (internal/faults), the AQE controller
#                      (internal/aqe) and the checkpoint coordinator
#                      (internal/checkpoint) whose recovery paths run
#                      inside pooled harness cells
#
# SASPAR_PARALLEL caps the harness worker pool; keep CI deterministic
# but let the bench tests use the machine.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/parallel/ ./internal/optimizer/ ./internal/obs/ ./internal/faults/ ./internal/aqe/ ./internal/checkpoint/

echo "CI OK"
