#!/bin/sh
# Engine-step performance regression gate.
#
# Re-measures the steady-state engine tick cost (engine_step entries:
# nonshared, shared, shared_batch1 — best of three runs each) and
# compares ns/op against the newest committed BENCH_pr*.json snapshot.
# Any mode more than BENCH_TOLERANCE_PCT percent slower (default 25)
# fails. Modes the baseline predates are reported but never fail, so
# schema growth does not break older baselines.
#
# Usage: scripts/bench_compare.sh [baseline.json]
set -eu
cd "$(dirname "$0")/.."

base="${1:-}"
if [ -z "$base" ]; then
    base=$(ls BENCH_pr*.json 2>/dev/null | sort -V | tail -1)
fi
if [ -z "$base" ] || [ ! -f "$base" ]; then
    echo "bench_compare: no committed BENCH_pr*.json baseline found" >&2
    exit 1
fi

exec go run ./cmd/figures -bench-compare "$base" -bench-tolerance "${BENCH_TOLERANCE_PCT:-25}"
