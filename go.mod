module saspar

go 1.22
