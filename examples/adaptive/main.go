// This example shows SASPAR's adaptive query execution (Section III)
// in action: a join workload whose hot keys drift over time runs under
// SASPAR+Flink, and the program reports every optimizer decision — the
// periodic trigger, the plans it applies or consciously skips, the key
// groups that move live (without stopping the queries), the tuples the
// JIT-compiled iterators send back to the sources for re-partitioning
// (Fig. 9's metric), and the operator compilations (Fig. 12b's).
package main

import (
	"fmt"
	"log"

	"saspar/internal/core"
	"saspar/internal/engine"
	"saspar/internal/optimizer"
	"saspar/internal/spe"
	"saspar/internal/vtime"
	"saspar/internal/workload"

	_ "saspar/internal/ajoinwl" // registers the "ajoin" workload
)

func main() {
	w, err := workload.Open("ajoin", workload.Options{
		Queries: 12,
		Window:  engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second},
		Rate:    40e6,              // 10e6 per stream across the four streams
		Drift:   12 * vtime.Second, // hot keys move every 12 virtual seconds
	})
	if err != nil {
		log.Fatal(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = 4
	engCfg.NumPartitions = 8
	engCfg.NumGroups = 32
	engCfg.SourceTasks = 4
	engCfg.TupleWeight = 500
	engCfg.Profile = spe.Profile(spe.Flink)

	coreCfg := core.DefaultConfig()
	coreCfg.TriggerInterval = 4 * vtime.Second
	coreCfg.MinImprovement = 0.002
	coreCfg.PlanHorizon = 4
	coreCfg.Opt = optimizer.Options{Timeout: 150e6}

	sys, err := core.New(engCfg, w.Streams, w.Queries, coreCfg)
	if err != nil {
		log.Fatal(err)
	}
	w.ApplyRates(sys.Engine(), 1)

	fmt.Printf("%d drifting join queries under SASPAR+Flink; optimizer every %v, drift every %v.\n\n",
		len(w.Queries), coreCfg.TriggerInterval, 12*vtime.Second)
	fmt.Println("time     triggers  applied  skipped  reshuffled   JIT compiles  throughput")

	m := sys.Engine().Metrics()
	for step := 1; step <= 12; step++ {
		m.StartMeasurement(sys.Engine().Clock())
		sys.Run(4 * vtime.Second)
		m.StopMeasurement(sys.Engine().Clock())
		snap := sys.Snapshot()
		fmt.Printf("%-8v %8d %8d %8d %10.0fK %13d  %s/s\n",
			snap.Clock,
			snap.Triggers, snap.Applied, snap.SkippedPlans,
			snap.Reshuffled/1000, snap.JITCompiles,
			vtime.FormatRate(snap.Throughput))
	}
	fmt.Println("\nEvery applied plan moved key groups live: notification markers aligned the")
	fmt.Println("operators (sync point), new operator bodies were JIT-compiled, and the moved")
	fmt.Println("groups' window state traveled back through the sources to its new owners —")
	fmt.Println("with query results guaranteed identical (see the engine correctness tests).")
}
