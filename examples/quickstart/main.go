// Quickstart runs the paper's running example (Listing 1): a PURCHASES
// stream consumed by two continuous queries —
//
//	Q1: SELECT SUM(price) FROM PURCHASES [Range r, Slide s] GROUP BY gemPackID
//	Q2: SELECT ... FROM PURCHASES ⋈ ADS ON userID, gemPackID
//
// Q1 partitions PURCHASES by gemPackID, Q2 by userID+gemPackID (the
// Fig. 1 scenario). The example executes the pair twice, once on the
// vanilla engine (every query ships its own copy of every tuple) and
// once under SASPAR (shared adaptive partitioning), and prints the
// throughput, latency and network traffic of both — the green-tuple
// effect of Fig. 1c, live.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"saspar/internal/core"
	"saspar/internal/engine"
	"saspar/internal/optimizer"
	"saspar/internal/vtime"
	"saspar/internal/workload"
)

// PURCHASES(userID, gemPackID, price, ts) / ADS(userID, gemPackID, ts)
const (
	colUserID  = 0
	colGemPack = 1
	colPrice   = 2
)

func purchases() engine.StreamDef {
	return engine.StreamDef{
		Name: "purchases", NumCols: 3, BytesPerTuple: 96,
		NewSource: func(task int) engine.Source {
			rng := rand.New(rand.NewSource(int64(task) + 100))
			return workload.RowAdapter(engine.GeneratorFunc(func(t *engine.Tuple, ts vtime.Time) {
				t.Cols[colUserID] = rng.Int63n(50000)
				t.Cols[colGemPack] = rng.Int63n(200)
				t.Cols[colPrice] = 99 + rng.Int63n(9900)
			}))
		},
	}
}

func ads() engine.StreamDef {
	return engine.StreamDef{
		Name: "ads", NumCols: 2, BytesPerTuple: 72,
		NewSource: func(task int) engine.Source {
			rng := rand.New(rand.NewSource(int64(task) + 200))
			return workload.RowAdapter(engine.GeneratorFunc(func(t *engine.Tuple, ts vtime.Time) {
				t.Cols[colUserID] = rng.Int63n(50000)
				t.Cols[colGemPack] = rng.Int63n(200)
			}))
		},
	}
}

func main() {
	streams := []engine.StreamDef{purchases(), ads()}
	window := engine.WindowSpec{Range: 2 * vtime.Second, Slide: 2 * vtime.Second}
	queries := []engine.QuerySpec{
		{
			// Q1: windowed aggregation over PURCHASES by gemPackID.
			ID: "q1", Kind: engine.OpAggregate,
			Inputs: []engine.Input{{Stream: 0, Key: engine.KeySpec{colGemPack}}},
			Window: window, AggCol: colPrice,
		},
		{
			// Q2: windowed join PURCHASES ⋈ ADS on userID+gemPackID.
			ID: "q2", Kind: engine.OpJoin,
			Inputs: []engine.Input{
				{Stream: 0, Key: engine.KeySpec{colUserID, colGemPack}},
				{Stream: 1, Key: engine.KeySpec{colUserID, colGemPack}},
			},
			Window: window,
		},
	}

	run := func(saspar bool) {
		engCfg := engine.DefaultConfig()
		engCfg.Nodes = 4
		engCfg.NumPartitions = 8
		engCfg.NumGroups = 32
		engCfg.SourceTasks = 4
		engCfg.TupleWeight = 200

		coreCfg := core.DefaultConfig()
		coreCfg.Enabled = saspar
		coreCfg.TriggerInterval = 4 * vtime.Second
		coreCfg.Opt = optimizer.Options{Timeout: 200e6} // 200ms MIP budget

		sys, err := core.New(engCfg, streams, queries, coreCfg)
		if err != nil {
			log.Fatal(err)
		}
		// Offer more than the cluster can carry; backpressure finds the
		// sustainable rate.
		sys.Engine().SetStreamRate(0, 30e6)
		sys.Engine().SetStreamRate(1, 10e6)

		sys.Run(8 * vtime.Second) // warm up, let the optimizer act
		m := sys.Engine().Metrics()
		m.StartMeasurement(sys.Engine().Clock())
		sys.Run(10 * vtime.Second)
		m.StopMeasurement(sys.Engine().Clock())

		name := "vanilla"
		if saspar {
			name = "SASPAR "
		}
		snap := sys.Snapshot()
		fmt.Printf("%s  throughput %8s tuples/s   latency %8v   wire %6.1f MB   optimizer: %d triggers, %d plans applied\n",
			name,
			vtime.FormatRate(snap.Throughput),
			snap.AvgLatency.Round(vtime.Millisecond),
			snap.Net.BytesNet/1e6,
			snap.Triggers, snap.Applied)
	}

	fmt.Println("Listing 1 of the SASPAR paper: Q1 (agg by gemPackID) + Q2 (join by userID+gemPackID)")
	fmt.Println("over one PURCHASES stream, 18 virtual seconds on a simulated 4-node cluster:")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("SASPAR ships shared tuples once per distinct target partition (the green")
	fmt.Println("tuples of Fig. 1c) and re-optimizes the partitioning live — same results,")
	fmt.Println("less wire traffic, more sustained throughput.")
}
