// This example runs the paper's headline comparison (Fig. 6) at demo
// scale: the streaming TPC-H workload — one LINEITEM stream consumed by
// queries that partition it by different columns — executed on all six
// systems under test: AJoin, Prompt and Flink, each with and without
// the SASPAR layer.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"saspar/internal/driver"
	"saspar/internal/engine"
	"saspar/internal/optimizer"
	"saspar/internal/spe"
	"saspar/internal/tpch"
	"saspar/internal/vtime"

	coresys "saspar/internal/core"
)

func main() {
	cfg := tpch.DefaultConfig()
	cfg.Queries = tpch.QuerySubset(8)
	cfg.Window = engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second}
	cfg.LineitemRate = 40e6
	w, err := tpch.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = 4
	engCfg.NumPartitions = 8
	engCfg.NumGroups = 32
	engCfg.SourceTasks = 4
	engCfg.TupleWeight = 500

	coreCfg := coresys.DefaultConfig()
	coreCfg.TriggerInterval = 8 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 150e6}

	fmt.Printf("Streaming TPC-H (%d queries over LINEITEM/ORDERS/CUSTOMER), six SUTs:\n\n", len(w.Queries))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SUT\tthroughput (M tuples/s)\tavg latency\twire (MB/s)")
	for _, sut := range spe.AllSUTs() {
		res, err := driver.Run(driver.Config{
			SUT:      sut,
			Workload: w,
			Engine:   engCfg,
			Core:     coreCfg,
			Warmup:   10 * vtime.Second,
			Measure:  10 * vtime.Second,
			// One repetition keeps the demo snappy; benchmarks use 3.
			Repetitions: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%v\t%.0f\n",
			res.SUT, res.Throughput/1e6, res.AvgLatency.Round(vtime.Millisecond), res.BytesNet/10/1e6)
	}
	tw.Flush()
	fmt.Println("\nThe SASPAR-ed engines share the LINEITEM partitioning work across queries")
	fmt.Println("with different GROUP BY columns — the paper's Fig. 6 effect.")
}
