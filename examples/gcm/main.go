// This example runs the Google-Cluster-Monitoring workload of Fig. 13:
// one task-event stream with two cheap aggregation queries, machine
// utilisation and per-job memory. With only two queries the sharing
// potential is deliberately small; the example shows SASPAR degrading
// gracefully into a modest-but-real win (the paper's closing point).
package main

import (
	"fmt"
	"log"

	"saspar/internal/driver"
	"saspar/internal/engine"
	"saspar/internal/gcm"
	"saspar/internal/optimizer"
	"saspar/internal/spe"
	"saspar/internal/vtime"

	coresys "saspar/internal/core"
)

func main() {
	cfg := gcm.DefaultConfig()
	cfg.Window = engine.WindowSpec{Range: 4 * vtime.Second, Slide: 4 * vtime.Second}
	cfg.Rate = 40e6
	w, err := gcm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	engCfg := engine.DefaultConfig()
	engCfg.Nodes = 4
	engCfg.NumPartitions = 8
	engCfg.NumGroups = 32
	engCfg.SourceTasks = 4
	engCfg.TupleWeight = 500

	coreCfg := coresys.DefaultConfig()
	coreCfg.TriggerInterval = 8 * vtime.Second
	coreCfg.Opt = optimizer.Options{Timeout: 150e6}

	fmt.Println("Google Cluster Monitoring: task-event stream, 2 aggregation queries")
	fmt.Println("(machine CPU demand by machineID, job memory by jobID):")
	fmt.Println()
	for _, sut := range []spe.SUT{
		{Kind: spe.Flink, Saspar: true}, {Kind: spe.Flink},
	} {
		res, err := driver.Run(driver.Config{
			SUT: sut, Workload: w, Engine: engCfg, Core: coreCfg,
			Warmup: 10 * vtime.Second, Measure: 10 * vtime.Second, Repetitions: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s throughput %8s tuples/s   latency %8v\n",
			res.SUT, vtime.FormatRate(res.Throughput), res.AvgLatency.Round(vtime.Millisecond))
	}
	fmt.Println("\nWith two queries the only sharing is where their key groups happen to")
	fmt.Println("co-locate, so SASPAR's edge is small here — exactly Fig. 13's lesson.")
}
